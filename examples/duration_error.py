"""How does measurement error grow with measurement duration?

Reproduces the paper's Section 5 study on one platform: run the loop
benchmark at increasing iteration counts, count in user and user+kernel
mode, and fit the error-vs-duration regression line.  The user+kernel
slope is real (timer interrupts execute kernel instructions inside the
measured window); the user-mode slope is noise.

Run:  python examples/duration_error.py
"""

from repro import fit_line
from repro.core import LoopBenchmark, MeasurementConfig, Mode, Pattern, run_measurement

SIZES = (1, 100_000, 250_000, 500_000, 750_000, 1_000_000)
REPEATS = 12


def error_series(mode: Mode) -> tuple[list[int], list[int]]:
    xs, ys = [], []
    for size in SIZES:
        benchmark = LoopBenchmark(size)
        for repeat in range(REPEATS):
            config = MeasurementConfig(
                processor="CD", infra="pc", pattern=Pattern.START_READ,
                mode=mode, seed=hash((size, repeat, mode.value)) % 2**31,
            )
            result = run_measurement(config, benchmark)
            xs.append(size)
            ys.append(result.error)
    return xs, ys


def main() -> None:
    print("loop benchmark on CD/perfctr, start-read pattern")
    print(f"{'iterations':>12} {'mean u+k error':>15} {'mean user error':>16}")

    uk_x, uk_y = error_series(Mode.USER_KERNEL)
    user_x, user_y = error_series(Mode.USER)
    for size in SIZES:
        uk_mean = sum(y for x, y in zip(uk_x, uk_y) if x == size) / REPEATS
        user_mean = sum(y for x, y in zip(user_x, user_y) if x == size) / REPEATS
        print(f"{size:>12,} {uk_mean:>15.1f} {user_mean:>16.1f}")

    uk_fit = fit_line(uk_x, uk_y)
    user_fit = fit_line(user_x, user_y)
    print(
        f"\nuser+kernel slope: {uk_fit.slope:.6f} instr/iteration "
        "(paper: ~0.002 for pc on CD)"
    )
    print(
        f"user-mode slope:   {user_fit.slope:.2e} instr/iteration "
        "(paper: several orders of magnitude smaller)"
    )
    print(
        "\nlesson (paper Section 8): the duration-dependent error only "
        "manifests when kernel-mode instructions are included."
    )


if __name__ == "__main__":
    main()

"""Regenerate every paper artifact and write one combined report.

The batch version of ``python -m repro reproduce all``: runs all 15
paper artifacts plus the 8 extension experiments at a quick scale and
writes a single markdown report next to this script.

Run:  python examples/reproduce_everything.py
"""

import pathlib
import time

from repro.experiments.reporting import run_artifacts, generate_report

OUTPUT = pathlib.Path(__file__).with_name("reproduction_report.md")


def main() -> None:
    started = time.time()
    print("running every paper artifact and extension (quick scale)...")
    results = run_artifacts(repeats=1)
    text = generate_report(
        results, title="Accuracy of Performance Counter Measurements — "
        "full reproduction"
    )
    OUTPUT.write_text(text + "\n")
    elapsed = time.time() - started
    print(f"{len(results)} artifacts reproduced in {elapsed:.0f}s")
    for name, result in results.items():
        headline = result.report_lines[-1] if result.report_lines else ""
        print(f"  {name:<22} {headline[:70]}")
    print(f"\nfull report: {OUTPUT}")


if __name__ == "__main__":
    main()

"""Why you should distrust cycle counts (paper, Section 6).

The same three-instruction loop, measured for CYCLES instead of
instructions, at every (pattern x optimization level) combination on
the simulated Athlon 64: each combination is a different binary, the
loop lands at a different address, and the cycles-per-iteration flips
between 2 and 3 purely from placement.  No measurement infrastructure
caused this — which is exactly the paper's warning.

Run:  python examples/cycle_variability.py
"""

from repro import Event, LoopBenchmark, MeasurementConfig, Mode, Pattern, run_measurement
from repro.core.compiler import OptLevel

ITERATIONS = 1_000_000


def main() -> None:
    benchmark = LoopBenchmark(ITERATIONS)
    print(
        f"cycles for the {ITERATIONS:,}-iteration loop on K8/pm, by "
        "(pattern x opt level):\n"
    )
    print(f"{'pattern':<12} " + " ".join(f"{o.value:>10}" for o in OptLevel))
    all_cpis = []
    for pattern in Pattern:
        row = [f"{pattern.short:<12}"]
        for opt in OptLevel:
            config = MeasurementConfig(
                processor="K8", infra="pm", pattern=pattern, mode=Mode.USER_KERNEL,
                opt_level=opt, primary_event=Event.CYCLES, seed=7,
                io_interrupts=False,
            )
            cycles = run_measurement(config, benchmark).measured
            cpi = cycles / ITERATIONS
            all_cpis.append(cpi)
            row.append(f"{cycles:>10,}")
        print(" ".join(row))

    print(
        f"\ncycles per iteration ranged {min(all_cpis):.2f} .. "
        f"{max(all_cpis):.2f} for IDENTICAL loop code."
    )
    print(
        "paper's conclusion: code placement effects dwarf any error the "
        "measurement infrastructure itself could add to cycle counts —"
        "\nbe suspicious of micro-architectural event counts."
    )


if __name__ == "__main__":
    main()

"""Unit tests for repro.core.compiler — the gcc placement model."""

import itertools

from repro.core.compiler import DEFAULT_GCC, GccModel, OptLevel
from repro.core.config import INFRASTRUCTURES, MeasurementConfig, Pattern


def config(**kwargs) -> MeasurementConfig:
    defaults = dict(processor="K8", infra="pm", io_interrupts=False)
    defaults.update(kwargs)
    return MeasurementConfig(**defaults)


class TestOptLevels:
    def test_four_levels(self):
        assert [o.value for o in OptLevel] == ["-O0", "-O1", "-O2", "-O3"]

    def test_o2_is_the_reference(self):
        assert OptLevel.O2.size_factor == 1.0

    def test_o0_largest(self):
        assert OptLevel.O0.size_factor == max(o.size_factor for o in OptLevel)


class TestHarnessSizes:
    def test_opt_level_changes_size(self):
        sizes = {
            DEFAULT_GCC.harness_bytes_before_benchmark(config(opt_level=opt))
            for opt in OptLevel
        }
        assert len(sizes) == 4

    def test_pattern_changes_size(self):
        sizes = {
            DEFAULT_GCC.harness_bytes_before_benchmark(config(pattern=p))
            for p in Pattern
        }
        assert len(sizes) >= 3

    def test_api_level_changes_size(self):
        direct = DEFAULT_GCC.harness_bytes_before_benchmark(config(infra="pm"))
        high = DEFAULT_GCC.harness_bytes_before_benchmark(config(infra="PHpm"))
        assert high > direct

    def test_counters_change_size(self):
        small = DEFAULT_GCC.harness_bytes_before_benchmark(config(n_counters=1))
        big = DEFAULT_GCC.harness_bytes_before_benchmark(config(n_counters=4))
        assert big > small


class TestAddresses:
    def test_deterministic(self):
        assert DEFAULT_GCC.benchmark_address(config()) == DEFAULT_GCC.benchmark_address(
            config()
        )

    def test_pattern_opt_combinations_spread_addresses(self):
        """The Section 6 mechanism: each (pattern, opt) pair is a
        different binary, hence a different loop address."""
        addresses = {
            DEFAULT_GCC.benchmark_address(config(pattern=p, opt_level=o))
            for p, o in itertools.product(Pattern, OptLevel)
        }
        assert len(addresses) >= 12  # nearly all 16 distinct

    def test_infrastructures_spread_addresses(self):
        addresses = {
            DEFAULT_GCC.benchmark_address(config(infra=infra))
            for infra in INFRASTRUCTURES
        }
        assert len(addresses) == len(INFRASTRUCTURES)

    def test_address_in_text_segment(self):
        model = GccModel()
        address = model.benchmark_address(config())
        assert address > model.text_base

    def test_custom_base(self):
        model = GccModel(text_base=0x40_0000)
        assert model.benchmark_address(config()) > 0x40_0000

    def test_benchmark_is_inline_not_aligned(self):
        """The loop is inline asm: its address is NOT function-aligned
        for most configurations (unlike placed functions)."""
        offsets = {
            DEFAULT_GCC.benchmark_address(config(pattern=p, opt_level=o)) % 16
            for p, o in itertools.product(Pattern, OptLevel)
        }
        assert offsets != {0}

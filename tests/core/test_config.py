"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import (
    INFRASTRUCTURES,
    MeasurementConfig,
    Mode,
    Pattern,
    api_level,
    substrate_of,
)
from repro.cpu.events import Event, PrivFilter
from repro.errors import ConfigurationError


class TestModeAndPattern:
    def test_mode_filters(self):
        assert Mode.USER.priv_filter is PrivFilter.USR
        assert Mode.KERNEL.priv_filter is PrivFilter.OS
        assert Mode.USER_KERNEL.priv_filter is PrivFilter.ALL

    def test_pattern_short_codes(self):
        assert {p.short for p in Pattern} == {"ar", "ao", "rr", "ro"}

    def test_begins_with_read(self):
        assert Pattern.READ_READ.begins_with_read
        assert Pattern.READ_STOP.begins_with_read
        assert not Pattern.START_READ.begins_with_read
        assert not Pattern.START_STOP.begins_with_read


class TestInfraNames:
    def test_six_infrastructures(self):
        assert len(INFRASTRUCTURES) == 6

    @pytest.mark.parametrize(
        "infra,substrate,level",
        [
            ("pm", "perfmon", "direct"),
            ("pc", "perfctr", "direct"),
            ("PLpm", "perfmon", "low"),
            ("PLpc", "perfctr", "low"),
            ("PHpm", "perfmon", "high"),
            ("PHpc", "perfctr", "high"),
        ],
    )
    def test_classification(self, infra, substrate, level):
        assert substrate_of(infra) == substrate
        assert api_level(infra) == level

    def test_unknown_infra(self):
        with pytest.raises(ConfigurationError, match="unknown infrastructure"):
            substrate_of("oprofile")


class TestConfigValidation:
    def test_defaults_valid(self):
        config = MeasurementConfig()
        assert config.substrate == "perfctr"
        assert config.api == "direct"

    def test_unknown_processor(self):
        with pytest.raises(ConfigurationError, match="unknown processor"):
            MeasurementConfig(processor="P5")

    def test_counter_budget_enforced(self):
        with pytest.raises(ConfigurationError, match="programmable counters"):
            MeasurementConfig(processor="CD", n_counters=3)

    def test_zero_counters_rejected(self):
        with pytest.raises(ConfigurationError, match="n_counters"):
            MeasurementConfig(n_counters=0)

    def test_tsc_off_only_for_direct_perfctr(self):
        MeasurementConfig(infra="pc", tsc=False)  # fine
        for infra in ("pm", "PLpc", "PHpc"):
            with pytest.raises(ConfigurationError, match="tsc"):
                MeasurementConfig(infra=infra, tsc=False)

    def test_events_measured_first(self):
        config = MeasurementConfig(processor="K8", n_counters=3)
        events = config.events()
        assert events[0] is Event.INSTR_RETIRED
        assert len(events) == 3
        assert len(set(events)) == 3

    def test_events_exclude_primary_duplicate(self):
        config = MeasurementConfig(
            processor="K8", n_counters=2, primary_event=Event.CYCLES
        )
        events = config.events()
        assert events[0] is Event.CYCLES
        assert Event.CYCLES not in events[1:]

"""Determinism contract of :func:`repro.core.sweep.config_seed`.

The seed derivation is the anchor of every calibrated result in the
repo: serial runs, parallel workers, and cache entries all assume that
the same factor tuple yields the same seed in every process, on every
run, forever.  These tests pin documented values (CRC32 is stable by
definition — a change here means the derivation itself changed and all
calibrated anchors move), check per-factor sensitivity, and prove the
full Figure 1 factorial is collision-free.
"""

import subprocess
import sys

from repro.core.compiler import OptLevel
from repro.core.config import Mode
from repro.core.sweep import SweepSpec, config_seed, iter_configs

#: Documented fixed values.  If any of these change, the seed
#: derivation changed and every calibrated simulation result shifts.
PINNED = {
    (0,): 4108050209,
    (0, "K8"): 3070990553,
    (0, "K8", "pm", "user", "O2", 100000, 0, "instr_retired"): 4263702448,
    (7, "PD", "pc"): 105009561,
}


class TestPinnedValues:
    def test_documented_values(self):
        for factors, expected in PINNED.items():
            assert config_seed(*factors) == expected

    def test_stable_across_processes(self):
        """A fresh interpreter derives the same seeds (no per-process
        hash randomisation leaks into the derivation)."""
        code = (
            "from repro.core.sweep import config_seed;"
            "print(config_seed(0, 'K8', 'pm', 'user', 'O2',"
            " 100000, 0, 'instr_retired'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert int(out.stdout.strip()) == PINNED[
            (0, "K8", "pm", "user", "O2", 100000, 0, "instr_retired")
        ]


class TestSensitivity:
    BASE = (0, "K8", "pm", "user", "O2", 100_000, 0, "instr_retired")

    def test_every_factor_position_matters(self):
        """Changing any single factor changes the seed."""
        variants = [
            (1, "K8", "pm", "user", "O2", 100_000, 0, "instr_retired"),
            (0, "PD", "pm", "user", "O2", 100_000, 0, "instr_retired"),
            (0, "K8", "pc", "user", "O2", 100_000, 0, "instr_retired"),
            (0, "K8", "pm", "user+kernel", "O2", 100_000, 0, "instr_retired"),
            (0, "K8", "pm", "user", "O3", 100_000, 0, "instr_retired"),
            (0, "K8", "pm", "user", "O2", 100_001, 0, "instr_retired"),
            (0, "K8", "pm", "user", "O2", 100_000, 1, "instr_retired"),
            (0, "K8", "pm", "user", "O2", 100_000, 0, "cycles"),
        ]
        base = config_seed(*self.BASE)
        for variant in variants:
            assert config_seed(*variant) != base, variant

    def test_factor_order_matters(self):
        assert config_seed(0, "a", "b") != config_seed(0, "b", "a")

    def test_base_seed_shifts_whole_space(self):
        assert config_seed(0, "K8", 1) != config_seed(1, "K8", 1)


class TestFactorialCollisionFreedom:
    def test_figure1_factorial_has_no_seed_collisions(self):
        """Every cell of the full Figure 1 factorial gets a unique seed."""
        spec = SweepSpec(
            processors=("PD", "CD", "K8"),
            modes=(Mode.USER, Mode.USER_KERNEL),
            opt_levels=tuple(OptLevel),
            n_counters=(1, 2, 3, 4),
            tsc=(True, False),
            repeats=3,
        )
        seeds = [config.seed for config in iter_configs(spec)]
        assert len(seeds) > 4000  # the factorial is genuinely large
        assert len(set(seeds)) == len(seeds)

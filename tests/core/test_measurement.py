"""Unit tests for repro.core.measurement."""

import pytest

from repro.core.benchmarks import LoopBenchmark, NullBenchmark
from repro.core.config import MeasurementConfig, Mode, Pattern
from repro.core.measurement import (
    MeasurementResult,
    expected_count,
    run_measurement,
)
from repro.cpu.events import Event


def cfg(**kwargs) -> MeasurementConfig:
    defaults = dict(processor="CD", infra="pc", pattern=Pattern.START_READ,
                    mode=Mode.USER_KERNEL, seed=1, io_interrupts=False)
    defaults.update(kwargs)
    return MeasurementConfig(**defaults)


class TestExpectedCount:
    def test_instructions_modeled(self):
        bench = LoopBenchmark(100)
        assert expected_count(bench, Event.INSTR_RETIRED, Mode.USER) == 301
        assert expected_count(bench, Event.INSTR_RETIRED, Mode.USER_KERNEL) == 301

    def test_kernel_mode_expects_zero(self):
        bench = LoopBenchmark(100)
        assert expected_count(bench, Event.INSTR_RETIRED, Mode.KERNEL) == 0

    def test_branches_modeled(self):
        bench = LoopBenchmark(100)
        assert expected_count(bench, Event.BRANCHES_RETIRED, Mode.USER) == 100

    def test_cycles_unmodeled(self):
        assert expected_count(LoopBenchmark(10), Event.CYCLES, Mode.USER) is None


class TestRunMeasurement:
    def test_null_benchmark_error_positive(self):
        result = run_measurement(cfg(), NullBenchmark())
        assert result.expected == 0
        assert result.error > 0
        assert result.measured == result.error

    def test_deterministic_given_seed(self):
        a = run_measurement(cfg(seed=77), NullBenchmark())
        b = run_measurement(cfg(seed=77), NullBenchmark())
        assert a.deltas == b.deltas

    def test_loop_error_excludes_benchmark_work(self):
        null_error = run_measurement(cfg(), NullBenchmark()).error
        loop_error = run_measurement(cfg(), LoopBenchmark(100_000)).error
        # fixed access cost dominates; the loop adds only duration error
        assert abs(loop_error - null_error) < 5000

    def test_multiple_counters_all_reported(self):
        result = run_measurement(cfg(n_counters=2), NullBenchmark())
        assert len(result.deltas) == 2
        assert result.events[1] is Event.CYCLES
        assert result.delta_of(Event.CYCLES) == result.deltas[1]

    def test_delta_of_unprogrammed_event(self):
        result = run_measurement(cfg(), NullBenchmark())
        with pytest.raises(ValueError, match="not programmed"):
            result.delta_of(Event.BRANCH_MISSES)

    def test_cycles_primary_has_no_error(self):
        result = run_measurement(
            cfg(primary_event=Event.CYCLES), LoopBenchmark(1000)
        )
        assert result.expected is None
        with pytest.raises(ValueError, match="ground truth"):
            _ = result.error
        assert result.measured > 0

    def test_user_mode_error_smaller_than_uk(self):
        uk = run_measurement(cfg(mode=Mode.USER_KERNEL), NullBenchmark()).error
        user = run_measurement(cfg(mode=Mode.USER), NullBenchmark()).error
        assert user < uk

    def test_kernel_only_counts_are_pure_error(self):
        result = run_measurement(cfg(mode=Mode.KERNEL), NullBenchmark())
        assert result.expected == 0
        assert result.error > 0  # the syscall-exit path of start

    def test_address_recorded(self):
        result = run_measurement(cfg(), NullBenchmark())
        assert result.benchmark_address > 0x8048000

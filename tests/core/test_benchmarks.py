"""Unit tests for repro.core.benchmarks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benchmarks import (
    LoopBenchmark,
    NullBenchmark,
    StridedLoadBenchmark,
)
from repro.errors import ConfigurationError
from repro.kernel.system import Machine


class TestNull:
    def test_zero_everything(self):
        bench = NullBenchmark()
        assert bench.expected_instructions == 0
        assert bench.expected_work().is_zero
        assert bench.code_size_bytes == 0

    def test_run_retires_nothing(self):
        machine = Machine(io_interrupts=False)
        before = machine.core.pmu.read_tsc()
        NullBenchmark().run(machine, 0x8048000)
        assert machine.core.pmu.read_tsc() == before


class TestLoop:
    def test_paper_model(self):
        assert LoopBenchmark(1000).expected_instructions == 3001

    @given(n=st.integers(1, 100_000))
    @settings(max_examples=25)
    def test_model_for_any_size(self, n):
        assert LoopBenchmark(n).expected_instructions == 1 + 3 * n

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError, match="iteration"):
            LoopBenchmark(0)

    def test_run_retires_exactly_the_model(self):
        from repro.cpu.events import Event, PrivFilter
        from repro.cpu.pmu import CounterConfig

        machine = Machine(processor="K8", kernel="vanilla", io_interrupts=False)
        machine.core.pmu.program(
            0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR, True)
        )
        machine.core.skid_probability = 0.0
        bench = LoopBenchmark(54_321)
        bench.run(machine, 0x8048000)
        assert machine.core.pmu.read(0) == bench.expected_instructions

    def test_code_size_constant_in_iterations(self):
        assert (
            LoopBenchmark(10).code_size_bytes
            == LoopBenchmark(10_000_000).code_size_bytes
        )


class TestStrided:
    def test_model(self):
        bench = StridedLoadBenchmark(100)
        assert bench.expected_instructions == 2 + 4 * 100
        assert bench.expected_work().loads == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="element"):
            StridedLoadBenchmark(0)
        with pytest.raises(ConfigurationError, match="stride"):
            StridedLoadBenchmark(10, stride_bytes=0)
        with pytest.raises(ConfigurationError, match="line"):
            StridedLoadBenchmark(10, line_bytes=0)

    def test_cache_model_full_stride(self):
        # stride >= line: every element touches a new line.
        bench = StridedLoadBenchmark(1000, stride_bytes=64, line_bytes=64)
        assert bench.expected_dcache_misses == 1000

    def test_cache_model_partial_stride(self):
        # stride 16 on 64B lines: one miss per four elements.
        bench = StridedLoadBenchmark(1000, stride_bytes=16, line_bytes=64)
        assert bench.expected_dcache_misses == 250

    def test_cache_model_remainder(self):
        # 1002 elements at stride 16: 250 full lines + a partial one.
        bench = StridedLoadBenchmark(1002, stride_bytes=16, line_bytes=64)
        assert bench.expected_dcache_misses == 251
        assert bench.expected_instructions == 2 + 4 * 1002

    def test_cache_model_huge_stride(self):
        bench = StridedLoadBenchmark(100, stride_bytes=4096, line_bytes=64)
        assert bench.expected_dcache_misses == 100

    def test_run_charges_misses_exactly(self):
        from repro.cpu.events import Event, PrivFilter
        from repro.cpu.pmu import CounterConfig

        machine = Machine(processor="K8", kernel="vanilla", io_interrupts=False)
        machine.core.pmu.program(
            0, CounterConfig(Event.DCACHE_MISSES, PrivFilter.USR, True)
        )
        bench = StridedLoadBenchmark(10_003, stride_bytes=16)
        bench.run(machine, 0x8048000)
        assert machine.core.pmu.read(0) == bench.expected_dcache_misses

    def test_as_loop_requires_whole_periods(self):
        with pytest.raises(ConfigurationError, match="multiple"):
            StridedLoadBenchmark(1001, stride_bytes=16).as_loop()
        StridedLoadBenchmark(1000, stride_bytes=16).as_loop()  # fine

    def test_run_matches_model(self):
        from repro.cpu.events import Event, PrivFilter
        from repro.cpu.pmu import CounterConfig

        machine = Machine(processor="CD", kernel="vanilla", io_interrupts=False)
        machine.core.pmu.program(
            0, CounterConfig(Event.LOADS_RETIRED, PrivFilter.USR, True)
        )
        bench = StridedLoadBenchmark(777)
        bench.run(machine, 0x8048000)
        assert machine.core.pmu.read(0) == 777

"""Tests for repro.core.compensation — null-probe compensation."""

import pytest

from repro.core.benchmarks import LoopBenchmark, NullBenchmark
from repro.core.compensation import (
    calibrate,
    compensated_error,
    measure_compensated,
)
from repro.core.config import MeasurementConfig, Mode, Pattern
from repro.core.measurement import run_measurement
from repro.cpu.events import Event
from repro.errors import ConfigurationError


def user_config(**kwargs) -> MeasurementConfig:
    defaults = dict(processor="CD", infra="pc", pattern=Pattern.START_READ,
                    mode=Mode.USER, seed=5, io_interrupts=False)
    defaults.update(kwargs)
    return MeasurementConfig(**defaults)


class TestCalibrate:
    def test_probe_median_equals_fixed_cost(self):
        config = user_config()
        model = calibrate(config, n_probes=5)
        null = run_measurement(config, NullBenchmark())
        assert model.probe_median == null.measured

    def test_stability_flag(self):
        model = calibrate(user_config(), n_probes=5)
        assert model.is_stable

    def test_needs_probes(self):
        with pytest.raises(ConfigurationError, match="probe"):
            calibrate(user_config(), n_probes=0)


class TestCompensation:
    def test_user_mode_residual_is_zero(self):
        """Interrupt-free user-mode fixed cost is deterministic, so
        compensation removes it exactly."""
        config = user_config()
        model = calibrate(config, n_probes=5)
        result = run_measurement(config, LoopBenchmark(100_000))
        assert compensated_error(result, model) == 0.0

    def test_duration_error_survives(self):
        config = user_config(mode=Mode.USER_KERNEL, io_interrupts=True, seed=3)
        model = calibrate(config, n_probes=7)
        result = run_measurement(config, LoopBenchmark(5_000_000))
        residual = compensated_error(result, model)
        raw = result.error
        # compensation removed (most of) the fixed part...
        assert abs(residual) < abs(raw)
        # ...but the interrupt-driven duration error remains
        assert residual > 1000

    def test_measure_compensated_calibrates_lazily(self):
        raw, residual = measure_compensated(user_config(), LoopBenchmark(1000))
        assert raw.error > 0
        assert residual == 0.0

    def test_cycles_cannot_be_compensated(self):
        config = user_config(primary_event=Event.CYCLES)
        model = calibrate(config, n_probes=3)
        result = run_measurement(config, LoopBenchmark(1000))
        with pytest.raises(ConfigurationError, match="ground truth"):
            compensated_error(result, model)

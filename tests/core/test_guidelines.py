"""Tests for the Section 8 guidelines advisor."""

import pytest

from repro.core.config import Mode
from repro.core.guidelines import SUSPICIOUS_EVENTS, Recommendation, advise
from repro.cpu.events import Event
from repro.cpu.frequency import Governor
from repro.errors import ConfigurationError


class TestAdvise:
    def test_user_mode_recommends_perfmon_family(self):
        rec = advise(processor="CD", mode=Mode.USER, calibration_runs=3)
        # Paper §4.2: perfmon wins user-mode counting.
        assert rec.infra == "pm"
        assert rec.expected_fixed_error < 60

    def test_user_kernel_recommends_perfctr_family(self):
        rec = advise(processor="CD", mode=Mode.USER_KERNEL, calibration_runs=3)
        # Paper §4.2: perfctr wins user+kernel counting.
        assert rec.infra == "pc"

    def test_restricting_candidates(self):
        rec = advise(
            processor="K8", mode=Mode.USER,
            candidate_infras=("PHpm", "PHpc"), calibration_runs=3,
        )
        assert rec.infra in ("PHpm", "PHpc")

    def test_duration_warning_only_for_user_kernel(self):
        user = advise(processor="CD", mode=Mode.USER, calibration_runs=2)
        uk = advise(processor="CD", mode=Mode.USER_KERNEL, calibration_runs=2)
        assert not any("duration" in w for w in user.warnings)
        assert any("duration" in w for w in uk.warnings)
        assert uk.duration_error_per_iteration > 0
        assert user.duration_error_per_iteration == 0

    def test_suspicious_event_warning(self):
        rec = advise(
            processor="CD", mode=Mode.USER, event=Event.CYCLES,
            calibration_runs=2,
        )
        assert any("suspicious" in w for w in rec.warnings)
        assert Event.CYCLES in SUSPICIOUS_EVENTS

    def test_governor_warning(self):
        rec = advise(
            processor="CD", mode=Mode.USER, governor=Governor.ONDEMAND,
            calibration_runs=2,
        )
        assert any("governor" in w for w in rec.warnings)

    def test_kernel_only_rejected(self):
        with pytest.raises(ConfigurationError, match="kernel-only"):
            advise(mode=Mode.KERNEL)

    def test_unknown_processor(self):
        with pytest.raises(ConfigurationError, match="unknown processor"):
            advise(processor="P6")


class TestRecommendation:
    def rec(self) -> Recommendation:
        return advise(processor="K8", mode=Mode.USER, calibration_runs=2)

    def test_as_config_round_trips(self):
        rec = self.rec()
        config = rec.as_config(seed=7)
        assert config.infra == rec.infra
        assert config.pattern is rec.pattern
        assert config.seed == 7

    def test_recommended_config_actually_performs(self):
        """The advisor's pick must measure at least as well as its
        calibration promised (same machine class, fresh seeds)."""
        from repro.core import NullBenchmark, run_measurement

        rec = self.rec()
        result = run_measurement(rec.as_config(seed=1234), NullBenchmark())
        assert result.error <= rec.expected_fixed_error * 3 + 30

    def test_render(self):
        text = self.rec().render()
        assert "pattern" in text
        assert "fixed cost" in text

"""Unit tests for repro.core.sweep."""

import pytest

from repro.core.compiler import OptLevel
from repro.core.config import Mode, Pattern
from repro.core.sweep import SweepSpec, config_seed, iter_configs, run_sweep
from repro.errors import ConfigurationError


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        processors=("CD",),
        infras=("pm", "PHpm"),
        patterns=tuple(Pattern),
        modes=(Mode.USER,),
        opt_levels=(OptLevel.O2,),
        n_counters=(1,),
        repeats=2,
        io_interrupts=False,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestConfigSeed:
    def test_stable(self):
        assert config_seed(0, "a", 1) == config_seed(0, "a", 1)

    def test_sensitive_to_factors(self):
        assert config_seed(0, "a", 1) != config_seed(0, "a", 2)
        assert config_seed(0, "a", 1) != config_seed(1, "a", 1)


class TestIterConfigs:
    def test_high_level_read_patterns_skipped(self):
        configs = list(iter_configs(tiny_spec()))
        high = [c for c in configs if c.infra == "PHpm"]
        assert {c.pattern for c in high} == {
            Pattern.START_READ, Pattern.START_STOP,
        }

    def test_counter_budget_respected(self):
        spec = tiny_spec(processors=("CD",), infras=("pm",),
                         n_counters=(1, 2, 3, 4))
        configs = list(iter_configs(spec))
        assert max(c.n_counters for c in configs) == 2  # CD has 2

    def test_tsc_off_only_for_direct_pc(self):
        spec = tiny_spec(infras=("pm", "pc", "PLpc"), tsc=(True, False))
        configs = list(iter_configs(spec))
        off = [c for c in configs if not c.tsc]
        assert off and all(c.infra == "pc" for c in off)

    def test_repeats_distinct_seeds(self):
        configs = list(iter_configs(tiny_spec()))
        seeds = [c.seed for c in configs]
        assert len(seeds) == len(set(seeds))

    def test_invalid_repeats(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            SweepSpec(repeats=0)


class TestRunSweep:
    def test_table_shape(self):
        spec = tiny_spec()
        table = run_sweep(spec)
        assert len(table) == len(list(iter_configs(spec)))
        for column in ("processor", "infra", "pattern", "mode", "error"):
            assert column in table.column_names

    def test_progress_callback(self):
        seen = []
        run_sweep(tiny_spec(repeats=1), progress=seen.append)
        assert seen == list(range(len(seen)))

    def test_errors_nonnegative_without_io(self):
        table = run_sweep(tiny_spec())
        assert min(table.values("error")) >= 0

    def test_reproducible(self):
        a = run_sweep(tiny_spec())
        b = run_sweep(tiny_spec())
        assert a.column("error") == b.column("error")

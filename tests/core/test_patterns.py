"""Unit tests for repro.core.patterns and registry adapters."""

import pytest

from repro.core.config import MeasurementConfig, Mode, Pattern
from repro.core.measurement import build_machine
from repro.core.patterns import run_pattern
from repro.core.registry import make_interface
from repro.errors import ConfigurationError, UnsupportedPatternError


def interface_for(infra: str, **kwargs):
    defaults = dict(processor="CD", infra=infra, mode=Mode.USER_KERNEL,
                    seed=2, io_interrupts=False)
    defaults.update(kwargs)
    config = MeasurementConfig(**defaults)
    machine = build_machine(config)
    iface = make_interface(config, machine)
    iface.setup()
    return iface


class TestAdapters:
    @pytest.mark.parametrize("infra", ["pm", "pc", "PLpm", "PLpc", "PHpm", "PHpc"])
    def test_start_then_stop_yields_values(self, infra):
        iface = interface_for(infra)
        iface.start_counting()
        values = iface.stop_counting()
        assert len(values) == 1
        assert values[0] >= 0

    @pytest.mark.parametrize("infra", ["pm", "pc", "PLpm", "PLpc"])
    def test_read_running_monotone(self, infra):
        iface = interface_for(infra)
        iface.start_counting()
        assert iface.read_running()[0] <= iface.read_running()[0]

    def test_name_reflects_substrate(self):
        assert interface_for("PLpm").name == "PLpm"
        assert interface_for("PLpc").name == "PLpc"
        assert interface_for("PHpm").name == "PHpm"

    def test_mismatched_machine_rejected(self):
        config_pm = MeasurementConfig(infra="pm", io_interrupts=False)
        config_pc = MeasurementConfig(infra="pc", io_interrupts=False)
        machine_pc = build_machine(config_pc)
        with pytest.raises(ConfigurationError, match="needs a perfmon kernel"):
            make_interface(config_pm, machine_pc)


class TestRunPattern:
    @pytest.mark.parametrize("pattern", list(Pattern))
    def test_all_patterns_on_direct_interfaces(self, pattern):
        for infra in ("pm", "pc"):
            iface = interface_for(infra)
            ran = []
            c0, c1 = run_pattern(pattern, iface, lambda: ran.append(1))
            assert ran == [1]
            assert len(c0) == len(c1) == 1
            assert c1[0] >= c0[0]

    def test_start_patterns_have_zero_baseline(self):
        iface = interface_for("pm")
        c0, _c1 = run_pattern(Pattern.START_READ, iface, lambda: None)
        assert c0 == (0,)

    def test_read_patterns_have_nonzero_baseline(self):
        iface = interface_for("pm")
        c0, _c1 = run_pattern(Pattern.READ_READ, iface, lambda: None)
        assert c0[0] > 0

    @pytest.mark.parametrize("pattern", [Pattern.READ_READ, Pattern.READ_STOP])
    @pytest.mark.parametrize("infra", ["PHpm", "PHpc"])
    def test_high_level_read_patterns_unsupported(self, infra, pattern):
        iface = interface_for(infra)
        with pytest.raises(UnsupportedPatternError, match="resets"):
            run_pattern(pattern, iface, lambda: None)

    def test_benchmark_runs_between_samples(self):
        """The benchmark's own work must land inside the window."""
        from repro.core.benchmarks import LoopBenchmark

        iface = interface_for("pc", mode=Mode.USER)
        bench = LoopBenchmark(10_000)
        machine = iface.machine
        c0, c1 = run_pattern(
            Pattern.READ_READ, iface, lambda: bench.run(machine, 0x8048000)
        )
        assert c1[0] - c0[0] >= bench.expected_instructions

"""Tests for the extended micro-benchmark suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MeasurementConfig, Mode, Pattern
from repro.core.measurement import run_measurement
from repro.core.microsuite import (
    BranchPatternBenchmark,
    DependencyChainBenchmark,
    SyscallBenchmark,
)
from repro.cpu.events import Event, PrivFilter
from repro.cpu.pmu import CounterConfig
from repro.errors import ConfigurationError
from repro.kernel.system import Machine


def quiet_machine(**kwargs) -> Machine:
    defaults = dict(processor="CD", kernel="vanilla", seed=2,
                    io_interrupts=False)
    defaults.update(kwargs)
    return Machine(**defaults)


class TestDependencyChain:
    def test_model(self):
        assert DependencyChainBenchmark(500).expected_instructions == 500

    def test_no_branches_no_memory(self):
        work = DependencyChainBenchmark(100).expected_work()
        assert work.branches == 0
        assert work.loads == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DependencyChainBenchmark(0)

    def test_run_retires_model(self):
        machine = quiet_machine()
        machine.core.pmu.program(
            0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR, True)
        )
        DependencyChainBenchmark(777).run(machine, 0x8048000)
        assert machine.core.pmu.read(0) == 777


class TestBranchPattern:
    def test_model(self):
        bench = BranchPatternBenchmark(1000)
        assert bench.expected_instructions == 1 + 4 * 1000
        # per pair: 1 inner taken + 2 back-edges
        assert bench.expected_taken_branches == 3 * 500

    def test_odd_iterations_rejected(self):
        with pytest.raises(ConfigurationError, match="even"):
            BranchPatternBenchmark(7)

    @given(n=st.integers(1, 5000))
    @settings(max_examples=20)
    def test_model_scales(self, n):
        bench = BranchPatternBenchmark(2 * n)
        assert bench.expected_work().branches == 4 * n

    def test_taken_branch_measurement(self):
        machine = quiet_machine()
        machine.core.pmu.program(
            0, CounterConfig(Event.TAKEN_BRANCHES, PrivFilter.USR, True)
        )
        bench = BranchPatternBenchmark(10_000)
        bench.run(machine, 0x8048000)
        assert machine.core.pmu.read(0) == bench.expected_taken_branches

    def test_through_harness(self):
        config = MeasurementConfig(
            processor="K8", infra="pm", pattern=Pattern.READ_READ,
            mode=Mode.USER, primary_event=Event.TAKEN_BRANCHES,
            seed=3, io_interrupts=False,
        )
        bench = BranchPatternBenchmark(100_000)
        result = run_measurement(config, bench)
        assert result.expected == bench.expected_taken_branches
        # infrastructure adds a few taken branches (calls/returns)
        assert 0 <= result.error < 100


class TestSyscallBenchmark:
    def test_user_model_is_one_trap_per_call(self):
        assert SyscallBenchmark(9).expected_instructions == 9

    def test_kernel_model_counts_entry_exit_handler(self):
        machine = quiet_machine()
        bench = SyscallBenchmark(5)
        costs = machine.build.costs
        expected = 5 * (costs.syscall_entry + 12 + costs.syscall_exit + 1)
        assert bench.expected_kernel_instructions(machine) == expected

    def test_kernel_count_measured_exactly(self):
        machine = quiet_machine()
        machine.core.pmu.program(
            0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.OS, True)
        )
        bench = SyscallBenchmark(25)
        bench.run(machine, 0)
        assert machine.core.pmu.read(0) == bench.expected_kernel_instructions(
            machine
        )

    def test_user_count_measured_exactly(self):
        machine = quiet_machine()
        machine.core.pmu.program(
            0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR, True)
        )
        bench = SyscallBenchmark(25)
        bench.run(machine, 0)
        assert machine.core.pmu.read(0) == 25

    def test_registration_idempotent(self):
        machine = quiet_machine()
        SyscallBenchmark(2).run(machine, 0)
        SyscallBenchmark(3).run(machine, 0)  # re-register must not raise

    def test_kernel_ground_truth_differs_by_build(self):
        bench = SyscallBenchmark(10)
        vanilla = quiet_machine()
        assert bench.expected_kernel_instructions(vanilla) > 0

    def test_mode_decomposition_holds(self):
        """user + kernel == user+kernel for a kernel-entering benchmark."""
        counts = {}
        for priv, name in ((PrivFilter.USR, "user"), (PrivFilter.OS, "os"),
                           (PrivFilter.ALL, "all")):
            machine = quiet_machine()
            machine.core.pmu.program(
                0, CounterConfig(Event.INSTR_RETIRED, priv, True)
            )
            SyscallBenchmark(8).run(machine, 0)
            counts[name] = machine.core.pmu.read(0)
        assert counts["user"] + counts["os"] == counts["all"]

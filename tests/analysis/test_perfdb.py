"""The perf-history store: recording, windows, derived thresholds."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.perfdb import (
    DEFAULT_FLOOR,
    History,
    HistoryRun,
    history_path,
    history_thresholds,
    load_history,
    parse_meta_pairs,
    record_run,
    run_meta,
)


def bench_file(tmp_path, name, benchmarks, **payload_extra):
    path = tmp_path / name
    path.write_text(json.dumps({"benchmarks": benchmarks, **payload_extra}))
    return path


def entry(name, mean, stddev=0.0, **extra):
    return {
        "name": name,
        "stats": {"mean": mean, "stddev": stddev, "rounds": 3},
        "extra_info": extra,
    }


def history_of(values, name="b"):
    """A History whose runs carry the given means for one benchmark."""
    return History(tuple(
        HistoryRun(meta={}, benchmarks={name: {"mean": v}})
        for v in values
    ))


class TestMetaPairs:
    def test_parses_pairs(self):
        assert parse_meta_pairs(["a=1", "b = two "]) == {
            "a": "1", "b": "two",
        }

    def test_none_is_empty(self):
        assert parse_meta_pairs(None) == {}

    def test_missing_equals_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_meta_pairs(["nope"])

    def test_empty_key_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_meta_pairs(["=value"])


class TestRunMeta:
    def test_prefers_what_the_file_recorded(self):
        meta = run_meta({
            "commit_info": {"id": "abc123"},
            "machine_info": {"node": "ci-box"},
            "datetime": "2026-08-08T00:00:00+00:00",
        })
        assert meta["git_sha"] == "abc123"
        assert meta["host"] == "ci-box"
        assert meta["recorded"] == "2026-08-08T00:00:00+00:00"

    def test_backfill_tolerant_for_bare_files(self):
        # The committed BENCH files predate metadata stamping; recording
        # them must still work.
        meta = run_meta({})
        assert meta["git_sha"] == "unknown"
        assert meta["host"]  # platform fallback, never empty
        assert meta["recorded"] is None

    def test_explicit_meta_overrides(self):
        meta = run_meta(
            {"commit_info": {"id": "abc"}}, {"git_sha": "forced", "ci": "7"}
        )
        assert meta["git_sha"] == "forced"
        assert meta["ci"] == "7"


class TestRecord:
    def test_appends_one_line_per_run(self, tmp_path):
        bench = bench_file(tmp_path, "b.json", [entry("b1", 0.5)])
        record_run(bench, tmp_path / "hist")
        record_run(bench, tmp_path / "hist")
        lines = history_path(tmp_path / "hist").read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["benchmarks"]["b1"]["mean"] == 0.5
        assert "meta" in record

    def test_keeps_only_summary_numbers(self, tmp_path):
        bench = bench_file(
            tmp_path, "b.json",
            [entry("b1", 0.5, p99=0.9, topology="fleet")],
        )
        run = record_run(bench, tmp_path / "hist")
        assert run.benchmarks["b1"]["p99"] == 0.9
        # String labels live in meta, not in per-benchmark summaries.
        assert "topology" not in run.benchmarks["b1"]

    def test_malformed_result_file_is_a_config_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{{{")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            record_run(bad, tmp_path / "hist")


class TestLoad:
    def test_round_trips(self, tmp_path):
        bench = bench_file(tmp_path, "b.json", [entry("b1", 0.5)])
        record_run(bench, tmp_path / "hist")
        history = load_history(tmp_path / "hist")
        assert len(history) == 1
        assert history.values("b1", "mean") == [0.5]

    def test_missing_history_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="bench record"):
            load_history(tmp_path / "nowhere")

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        bench = bench_file(tmp_path, "b.json", [entry("b1", 0.5)])
        record_run(bench, tmp_path / "hist")
        with history_path(tmp_path / "hist").open("a") as handle:
            handle.write('{"truncated": \n')  # killed mid-append
            handle.write("[1, 2]\n")  # not a record object
        record_run(bench, tmp_path / "hist")
        history = load_history(tmp_path / "hist")
        assert len(history) == 2
        assert history.skipped == 2

    def test_only_corrupt_lines_is_a_config_error(self, tmp_path):
        path = history_path(tmp_path / "hist")
        path.parent.mkdir()
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError, match="no readable runs"):
            load_history(tmp_path / "hist")

    def test_window_keeps_the_most_recent_runs(self, tmp_path):
        for mean in (0.1, 0.2, 0.3, 0.4):
            record_run(
                bench_file(tmp_path, f"b{mean}.json", [entry("b1", mean)]),
                tmp_path / "hist",
            )
        history = load_history(tmp_path / "hist", window=2)
        assert history.values("b1", "mean") == [0.3, 0.4]


class TestThresholds:
    def test_derived_from_relative_dispersion(self):
        history = history_of([1.0, 1.1, 0.9])
        [threshold] = history_thresholds(history, "mean", k=3.0).values()
        assert threshold.source == "history"
        assert threshold.threshold == pytest.approx(0.3, rel=0.01)
        assert threshold.runs == 3

    def test_zero_stddev_falls_back_to_floor(self):
        history = history_of([1.0, 1.0, 1.0])
        [threshold] = history_thresholds(history, "mean").values()
        assert threshold.source == "floor"
        assert threshold.threshold == DEFAULT_FLOOR

    def test_single_run_falls_back_to_floor(self):
        history = history_of([1.0])
        [threshold] = history_thresholds(history, "mean").values()
        assert threshold.source == "floor"
        assert threshold.runs == 1

    def test_tiny_dispersion_clamps_to_floor(self):
        history = history_of([1.0, 1.0001, 0.9999])
        [threshold] = history_thresholds(
            history, "mean", floor=0.05
        ).values()
        assert threshold.threshold == 0.05
        assert threshold.source == "floor"

    def test_benchmark_missing_the_metric_gets_no_entry(self):
        history = history_of([1.0, 1.1])
        assert history_thresholds(history, "p99") == {}

    def test_bad_k_and_floor_are_config_errors(self):
        history = history_of([1.0, 1.1])
        with pytest.raises(ConfigurationError, match="k must be"):
            history_thresholds(history, "mean", k=0)
        with pytest.raises(ConfigurationError, match="floor must be"):
            history_thresholds(history, "mean", floor=-0.1)

    def test_describe_names_the_provenance(self):
        history = history_of([1.0, 2.0])
        [threshold] = history_thresholds(history, "mean").values()
        assert "runs" in threshold.describe()

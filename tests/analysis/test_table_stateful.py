"""Stateful property test of ResultTable against a list-of-dicts model."""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.analysis.table import ResultTable

COLUMNS = ("infra", "error")
infras = st.sampled_from(["pm", "pc", "PLpm"])
errors = st.integers(-100, 5000)


class TableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.table = ResultTable()
        self.model: list[dict] = []

    @rule(infra=infras, error=errors)
    def append(self, infra, error):
        row = {"infra": infra, "error": error}
        self.table.append(row)
        self.model.append(dict(row))

    @rule(infra=infras)
    def filter_where(self, infra):
        sub = self.table.where(infra=infra)
        expected = [r for r in self.model if r["infra"] == infra]
        assert list(sub.rows()) == expected

    @rule()
    def sort(self):
        if not self.model:
            return
        ordered = self.table.sort_by("error")
        assert ordered.column("error") == sorted(
            r["error"] for r in self.model
        )

    @rule()
    def csv_round_trip(self):
        if not self.model:
            return
        loaded = ResultTable.from_csv(self.table.to_csv())
        assert list(loaded.rows()) == self.model

    @rule()
    def concat_with_self(self):
        if not self.model:
            return
        doubled = ResultTable.concat([self.table, self.table])
        assert len(doubled) == 2 * len(self.model)

    @invariant()
    def length_matches_model(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def rows_match_model(self):
        assert list(self.table.rows()) == self.model


TestTableStateful = TableMachine.TestCase

"""Unit tests for repro.analysis.table."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.table import ResultTable
from repro.errors import ConfigurationError


@pytest.fixture
def table() -> ResultTable:
    return ResultTable.from_rows(
        [
            {"infra": "pm", "mode": "user", "error": 37},
            {"infra": "pm", "mode": "user+kernel", "error": 726},
            {"infra": "pc", "mode": "user", "error": 67},
            {"infra": "pc", "mode": "user+kernel", "error": 163},
        ]
    )


class TestConstruction:
    def test_from_rows(self, table):
        assert len(table) == 4
        assert set(table.column_names) == {"infra", "mode", "error"}

    def test_schema_enforced_on_append(self, table):
        with pytest.raises(ConfigurationError, match="schema"):
            table.append({"infra": "pm", "mode": "user"})

    def test_ragged_columns_rejected(self):
        with pytest.raises(ConfigurationError, match="ragged"):
            ResultTable({"a": [1, 2], "b": [1]})

    def test_empty_table(self):
        assert len(ResultTable()) == 0

    def test_concat(self, table):
        doubled = ResultTable.concat([table, table])
        assert len(doubled) == 8

    def test_concat_schema_mismatch(self, table):
        other = ResultTable.from_rows([{"x": 1}])
        with pytest.raises(ConfigurationError, match="schemas"):
            ResultTable.concat([table, other])

    def test_concat_empty_list(self):
        assert len(ResultTable.concat([])) == 0


class TestAccess:
    def test_column(self, table):
        assert table.column("error") == [37, 726, 67, 163]

    def test_unknown_column(self, table):
        with pytest.raises(ConfigurationError, match="no column"):
            table.column("nope")

    def test_values_numeric(self, table):
        values = table.values("error")
        assert isinstance(values, np.ndarray)
        assert values.sum() == 993

    def test_unique_order_preserving(self, table):
        assert table.unique("infra") == ["pm", "pc"]

    def test_rows_round_trip(self, table):
        rebuilt = ResultTable.from_rows(table.rows())
        assert rebuilt.column("error") == table.column("error")


class TestRelational:
    def test_where_equality(self, table):
        sub = table.where(infra="pm")
        assert len(sub) == 2

    def test_where_membership(self, table):
        sub = table.where(error=[37, 67])
        assert len(sub) == 2

    def test_where_multiple_conditions(self, table):
        sub = table.where(infra="pc", mode="user")
        assert sub.column("error") == [67]

    def test_where_typo_raises(self, table):
        with pytest.raises(ConfigurationError, match="no column"):
            table.where(infrastructure="pm")

    def test_filter_predicate(self, table):
        sub = table.filter(lambda row: row["error"] > 100)
        assert len(sub) == 2

    def test_select(self, table):
        assert table.select(["error"]).column_names == ("error",)

    def test_with_column(self, table):
        doubled = table.with_column("double", [e * 2 for e in table.column("error")])
        assert doubled.column("double")[0] == 74
        assert "double" not in table.column_names

    def test_with_column_length_checked(self, table):
        with pytest.raises(ConfigurationError, match="values"):
            table.with_column("x", [1])

    def test_sort_by(self, table):
        ordered = table.sort_by("error")
        assert ordered.column("error") == [37, 67, 163, 726]

    def test_group_by(self, table):
        groups = table.group_by("infra")
        assert set(groups) == {("pm",), ("pc",)}
        assert len(groups[("pm",)]) == 2

    def test_group_by_multiple(self, table):
        groups = table.group_by(["infra", "mode"])
        assert len(groups) == 4

    def test_aggregate(self, table):
        out = table.aggregate("infra", worst=("error", np.max))
        worst = dict(zip(out.column("infra"), out.column("worst")))
        assert worst["pm"] == 726
        assert worst["pc"] == 163


class TestProperties:
    @given(
        values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=60),
    )
    def test_filter_partitions(self, values):
        table = ResultTable({"v": values})
        left = table.filter(lambda r: r["v"] < 0)
        right = table.filter(lambda r: r["v"] >= 0)
        assert len(left) + len(right) == len(table)

    @given(values=st.lists(st.integers(0, 100), min_size=1, max_size=60))
    def test_sort_is_a_permutation(self, values):
        table = ResultTable({"v": values})
        assert sorted(values) == table.sort_by("v").column("v")

    @given(values=st.lists(st.sampled_from("abc"), min_size=1, max_size=60))
    def test_groups_cover_rows(self, values):
        table = ResultTable({"k": values})
        groups = table.group_by("k")
        assert sum(len(g) for g in groups.values()) == len(table)


class TestCsvRoundTrip:
    def test_round_trip_preserves_rows(self, table, tmp_path):
        path = tmp_path / "out.csv"
        table.to_csv(path)
        loaded = ResultTable.from_csv(path)
        assert list(loaded.rows()) == list(table.rows())

    def test_from_csv_text(self, table):
        text = table.to_csv()
        loaded = ResultTable.from_csv(text)
        assert loaded.column("error") == table.column("error")

    def test_types_restored(self):
        original = ResultTable.from_rows(
            [{"n": 3, "x": 2.5, "flag": True, "name": "pc"}]
        )
        loaded = ResultTable.from_csv(original.to_csv())
        row = next(loaded.rows())
        assert row == {"n": 3, "x": 2.5, "flag": True, "name": "pc"}

    def test_empty_csv(self):
        assert len(ResultTable.from_csv("")) == 0

"""Tests for the ASCII figure rendering helpers."""

import numpy as np
import pytest

from repro.analysis.report import (
    render_box_ladder,
    render_series,
    render_violin,
    summarize_errors,
)
from repro.analysis.stats import box_summary, violin_summary
from repro.errors import ConfigurationError


class TestRenderViolin:
    def test_width_respected(self):
        violin = violin_summary(np.random.default_rng(0).normal(size=500))
        line = render_violin(violin, width=40)
        inner = line[line.index("[") + 1 : line.index("]")]
        assert len(inner) == 40

    def test_dense_region_darker(self):
        data = [5.0] * 500 + list(np.linspace(0, 10, 20))
        violin = violin_summary(data, bins=20)
        line = render_violin(violin, width=20)
        inner = line[line.index("[") + 1 : line.index("]")]
        middle = inner[len(inner) // 2]
        assert middle in "%@#"

    def test_label_prefixed(self):
        violin = violin_summary([1.0, 2.0, 3.0])
        assert render_violin(violin, label="user").startswith("user")


class TestRenderBoxLadder:
    def test_common_scale(self):
        boxes = {
            "pc": box_summary([80, 84, 90]),
            "pm": box_summary([700, 726, 750]),
        }
        text = render_box_ladder(boxes)
        assert "med=84" in text
        assert "med=726" in text
        assert "scale: 0" in text

    def test_medians_ordered_by_position(self):
        boxes = {
            "small": box_summary([10.0] * 5),
            "large": box_summary([900.0] * 5),
        }
        lines = render_box_ladder(boxes, width=40).splitlines()
        assert lines[0].index("|") < lines[1].index("|")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="no boxes"):
            render_box_ladder({})


class TestRenderSeries:
    def test_scatter_contains_points(self):
        text = render_series([0, 1, 2], [0, 10, 20], width=20, height=5)
        assert text.count("o") >= 2

    def test_mismatched_series_rejected(self):
        with pytest.raises(ConfigurationError, match="matching"):
            render_series([1, 2], [1], width=10, height=3)

    def test_label_included(self):
        assert render_series([1, 2], [3, 4], label="cycles").startswith("cycles")


class TestSummarizeErrors:
    def test_contains_all_stats(self):
        line = summarize_errors([1, 2, 3, 4, 100], label="uk")
        for token in ("min=", "med=", "max=", "n=5", "uk:"):
            assert token in line

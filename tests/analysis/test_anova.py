"""Unit tests for repro.analysis.anova."""

import numpy as np
import pytest

from repro.analysis.anova import anova_n_way
from repro.errors import ConfigurationError


def balanced_design(rng, effect_a=10.0, effect_b=0.0, n_rep=8):
    """Two factors x two levels each, with configurable main effects."""
    factors = {"a": [], "b": []}
    response = []
    for a_level in ("a0", "a1"):
        for b_level in ("b0", "b1"):
            for _ in range(n_rep):
                factors["a"].append(a_level)
                factors["b"].append(b_level)
                value = rng.normal(0, 1)
                if a_level == "a1":
                    value += effect_a
                if b_level == "b1":
                    value += effect_b
                response.append(value)
    return factors, response


class TestAnova:
    def test_detects_real_effect(self):
        rng = np.random.default_rng(0)
        factors, response = balanced_design(rng, effect_a=10, effect_b=0)
        result = anova_n_way(factors, response)
        assert result.effect("a").p_value < 1e-10
        assert result.effect("b").p_value > 1e-6

    def test_null_effect_not_significant(self):
        rng = np.random.default_rng(1)
        factors, response = balanced_design(rng, effect_a=0, effect_b=0)
        result = anova_n_way(factors, response)
        assert "a" not in result.significant_factors(alpha=1e-3)
        assert "b" not in result.significant_factors(alpha=1e-3)

    def test_degrees_of_freedom(self):
        rng = np.random.default_rng(2)
        factors, response = balanced_design(rng, n_rep=5)
        result = anova_n_way(factors, response)
        assert result.effect("a").df == 1
        assert result.effect("b").df == 1
        assert result.residual_df == 20 - 1 - 2

    def test_sum_of_squares_decomposes(self):
        rng = np.random.default_rng(3)
        factors, response = balanced_design(rng, effect_a=5, effect_b=3)
        result = anova_n_way(factors, response)
        explained = sum(e.sum_squares for e in result.effects)
        assert explained + result.residual_ss == pytest.approx(result.total_ss)

    def test_three_level_factor(self):
        rng = np.random.default_rng(4)
        levels = ["x", "y", "z"]
        factors = {"f": [levels[i % 3] for i in range(60)]}
        response = [
            {"x": 0.0, "y": 5.0, "z": 10.0}[f] + rng.normal(0, 0.5)
            for f in factors["f"]
        ]
        result = anova_n_way(factors, response)
        assert result.effect("f").df == 2
        assert result.effect("f").p_value < 1e-10

    def test_single_level_factor_is_inert(self):
        rng = np.random.default_rng(5)
        factors = {"only": ["same"] * 30, "real": ["a", "b"] * 15}
        response = [
            (10.0 if r == "b" else 0.0) + rng.normal() for r in factors["real"]
        ]
        result = anova_n_way(factors, response)
        assert result.effect("only").df == 0
        assert result.effect("only").p_value == 1.0
        assert result.effect("real").significant()

    def test_unknown_effect_lookup(self):
        rng = np.random.default_rng(6)
        factors, response = balanced_design(rng)
        result = anova_n_way(factors, response)
        with pytest.raises(ConfigurationError, match="no factor"):
            result.effect("ghost")


class TestValidation:
    def test_needs_observations(self):
        with pytest.raises(ConfigurationError, match="observations"):
            anova_n_way({"a": ["x"]}, [1.0])

    def test_needs_factors(self):
        with pytest.raises(ConfigurationError, match="factor"):
            anova_n_way({}, [1.0, 2.0, 3.0])

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="values for"):
            anova_n_way({"a": ["x", "y"]}, [1.0, 2.0, 3.0])

    def test_needs_replication(self):
        # Saturated model: no residual degrees of freedom.
        with pytest.raises(ConfigurationError, match="residual"):
            anova_n_way({"a": ["x", "y", "z"]}, [1.0, 2.0, 3.0])


class TestInteractions:
    @staticmethod
    def crossed_design(rng, interaction=10.0, n_rep=10):
        """a and b have no main effects; only their combination matters."""
        factors = {"a": [], "b": []}
        response = []
        for a_level in ("a0", "a1"):
            for b_level in ("b0", "b1"):
                for _ in range(n_rep):
                    factors["a"].append(a_level)
                    factors["b"].append(b_level)
                    value = rng.normal(0, 0.5)
                    # XOR-shaped effect: pure interaction.
                    if (a_level == "a1") != (b_level == "b1"):
                        value += interaction
                    response.append(value)
        return factors, response

    def test_pure_interaction_detected(self):
        rng = np.random.default_rng(11)
        factors, response = self.crossed_design(rng)
        result = anova_n_way(factors, response, interactions=[("a", "b")])
        assert result.effect("a:b").significant()
        # The main effects carry (almost) nothing.
        assert result.eta_squared("a:b") > 0.8
        assert result.eta_squared("a") < 0.1

    def test_no_interaction_not_flagged(self):
        rng = np.random.default_rng(12)
        factors = {"a": [], "b": []}
        response = []
        for a_level in ("a0", "a1"):
            for b_level in ("b0", "b1"):
                for _ in range(10):
                    factors["a"].append(a_level)
                    factors["b"].append(b_level)
                    response.append(
                        (5.0 if a_level == "a1" else 0.0) + rng.normal(0, 1)
                    )
        result = anova_n_way(factors, response, interactions=[("a", "b")])
        assert result.effect("a").significant()
        assert not result.effect("a:b").significant(alpha=1e-3)

    def test_unknown_interaction_factor(self):
        rng = np.random.default_rng(13)
        factors, response = self.crossed_design(rng)
        with pytest.raises(ConfigurationError, match="unknown factor"):
            anova_n_way(factors, response, interactions=[("a", "ghost")])

    def test_decomposition_still_holds(self):
        rng = np.random.default_rng(14)
        factors, response = self.crossed_design(rng)
        result = anova_n_way(factors, response, interactions=[("a", "b")])
        explained = sum(e.sum_squares for e in result.effects)
        assert explained + result.residual_ss == pytest.approx(result.total_ss)

    def test_eta_squared_sums_below_one(self):
        rng = np.random.default_rng(15)
        factors, response = self.crossed_design(rng)
        result = anova_n_way(factors, response, interactions=[("a", "b")])
        total = sum(result.eta_squared(e.name) for e in result.effects)
        assert 0 < total <= 1.0

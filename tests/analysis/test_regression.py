"""Unit tests for repro.analysis.regression."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.regression import fit_line
from repro.errors import ConfigurationError


class TestFitLine:
    def test_exact_line_recovered(self):
        x = np.arange(10, dtype=float)
        fit = fit_line(x, 0.002 * x + 5)
        assert fit.slope == pytest.approx(0.002)
        assert fit.intercept == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_slope_close(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 1e6, 200)
        y = 0.00204 * x + rng.normal(0, 50, size=200)
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(0.00204, rel=0.05)

    def test_predict(self):
        fit = fit_line([0, 1], [1, 3])
        assert fit.predict(2) == pytest.approx(5.0)

    def test_constant_y(self):
        fit = fit_line([0, 1, 2], [7, 7, 7])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError, match="shape"):
            fit_line([1, 2], [1, 2, 3])

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError, match="2 points"):
            fit_line([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ConfigurationError, match="identical"):
            fit_line([3, 3, 3], [1, 2, 3])

    @given(
        slope=st.floats(-100, 100, allow_nan=False),
        intercept=st.floats(-100, 100, allow_nan=False),
    )
    def test_recovers_arbitrary_lines(self, slope, intercept):
        x = np.linspace(0, 10, 20)
        fit = fit_line(x, slope * x + intercept)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
        assert fit.intercept == pytest.approx(intercept, abs=1e-5)

"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.analysis.bootstrap import bootstrap_ci, median_ci
from repro.errors import ConfigurationError


class TestBootstrapCi:
    def test_interval_brackets_estimate(self):
        rng = np.random.default_rng(1)
        ci = median_ci(rng.normal(100, 10, size=200))
        assert ci.low <= ci.estimate <= ci.high

    def test_covers_true_median_typically(self):
        rng = np.random.default_rng(2)
        hits = sum(
            median_ci(rng.normal(50, 5, size=80), seed=i).contains(50)
            for i in range(40)
        )
        assert hits >= 32  # ~95% nominal coverage, allow slack

    def test_more_data_narrower(self):
        rng = np.random.default_rng(3)
        small = median_ci(rng.normal(0, 1, size=20))
        large = median_ci(rng.normal(0, 1, size=2000))
        assert large.width < small.width

    def test_higher_confidence_wider(self):
        rng = np.random.default_rng(4)
        data = rng.exponential(5, size=150)
        narrow = median_ci(data, confidence=0.80)
        wide = median_ci(data, confidence=0.99)
        assert wide.width > narrow.width

    def test_custom_statistic(self):
        data = [1.0, 2.0, 3.0, 4.0, 100.0]
        ci = bootstrap_ci(data, np.mean, seed=5)
        assert ci.estimate == pytest.approx(22.0)

    def test_deterministic_given_seed(self):
        data = list(range(30))
        assert median_ci(data, seed=9) == median_ci(data, seed=9)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="observations"):
            median_ci([1.0])
        with pytest.raises(ConfigurationError, match="confidence"):
            median_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ConfigurationError, match="n_resamples"):
            bootstrap_ci([1.0, 2.0], n_resamples=10)

    def test_on_real_measurement_errors(self):
        """CI of the pc start-read fixed error is tight around ~168."""
        from repro.core import (
            MeasurementConfig,
            Mode,
            NullBenchmark,
            Pattern,
            run_measurement,
        )

        errors = [
            run_measurement(
                MeasurementConfig(
                    processor="CD", infra="pc", pattern=Pattern.START_READ,
                    mode=Mode.USER_KERNEL, seed=seed,
                ),
                NullBenchmark(),
            ).error
            for seed in range(25)
        ]
        ci = median_ci(errors)
        assert ci.contains(168)
        assert ci.width < 120

"""Unit tests for repro.analysis.stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    box_summary,
    render_box_ascii,
    violin_summary,
)
from repro.errors import ConfigurationError

samples = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200
)


class TestBoxSummary:
    def test_simple_quartiles(self):
        box = box_summary([1, 2, 3, 4, 5])
        assert box.median == 3
        assert box.q1 == 2
        assert box.q3 == 4
        assert box.count == 5

    def test_outlier_detection(self):
        data = [10] * 20 + [1000]
        box = box_summary(data)
        assert box.n_outliers == 1
        assert box.whisker_high == 10

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            box_summary([])

    def test_single_value(self):
        box = box_summary([42.0])
        assert box.median == box.minimum == box.maximum == 42.0
        assert box.iqr == 0

    @given(values=samples)
    def test_invariants(self, values):
        box = box_summary(values)
        assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
        assert box.whisker_low >= box.minimum
        assert box.whisker_high <= box.maximum
        assert 0 <= box.n_outliers <= box.count


class TestViolinSummary:
    def test_densities_integrate_to_one(self):
        rng = np.random.default_rng(0)
        violin = violin_summary(rng.normal(size=1000), bins=30)
        widths = np.diff(violin.bin_edges)
        assert np.sum(np.asarray(violin.densities) * widths) == pytest.approx(1.0)

    def test_peak_bin_contains_mode(self):
        data = [5.0] * 100 + [1.0, 9.0]
        low, high = violin_summary(data, bins=10).peak_bin()
        assert low <= 5.0 <= high

    def test_bad_bins(self):
        with pytest.raises(ConfigurationError, match="bins"):
            violin_summary([1.0], bins=0)

    def test_box_included(self):
        violin = violin_summary([1, 2, 3])
        assert violin.box.median == 2


class TestAsciiRendering:
    def test_contains_median_marker(self):
        box = box_summary([0, 25, 50, 75, 100])
        line = render_box_ascii("label", box, scale_max=100)
        assert "|" in line and "label" in line and "med=50" in line

    def test_zero_scale_does_not_crash(self):
        box = box_summary([0.0])
        assert render_box_ascii("x", box, scale_max=0)

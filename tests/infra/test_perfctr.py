"""Tests for the perfctr extension and libperfctr."""

import pytest

from repro.cpu.events import Event, PrivFilter
from repro.errors import CounterAllocationError, CounterError
from repro.kernel.system import Machine
from repro.perfctr.kext import VPerfctrControl
from repro.perfctr.libperfctr import LibPerfctr


def lib_on(machine: Machine) -> LibPerfctr:
    lib = LibPerfctr(machine)
    lib.open()
    return lib


class TestLifecycle:
    def test_needs_perfctr_kernel(self, quiet_perfmon_machine):
        with pytest.raises(CounterError, match="perfctr-patched"):
            LibPerfctr(quiet_perfmon_machine)

    def test_read_requires_open(self, quiet_perfctr_machine):
        lib = LibPerfctr(quiet_perfctr_machine)
        with pytest.raises(CounterError, match="open"):
            lib.read()

    def test_read_requires_control(self, quiet_perfctr_machine):
        lib = lib_on(quiet_perfctr_machine)
        with pytest.raises(CounterError, match="programmed"):
            lib.read()

    def test_open_enables_user_rdpmc(self, quiet_perfctr_machine):
        lib_on(quiet_perfctr_machine)
        assert quiet_perfctr_machine.core.user_rdpmc_enabled

    def test_unlink_frees_state(self, quiet_perfctr_machine, instr_all):
        lib = lib_on(quiet_perfctr_machine)
        lib.control(instr_all)
        lib.unlink()
        with pytest.raises(CounterError, match="open"):
            lib.read()

    def test_too_many_counters_rejected(self, quiet_perfctr_machine):
        lib = lib_on(quiet_perfctr_machine)  # CD: 2 programmable
        events = tuple(
            (ev, PrivFilter.ALL)
            for ev in (Event.INSTR_RETIRED, Event.CYCLES, Event.BRANCHES_RETIRED)
        )
        with pytest.raises(CounterAllocationError, match="available"):
            lib.control(events)


class TestCounting:
    def test_counts_are_monotone_while_running(
        self, quiet_perfctr_machine, instr_all
    ):
        lib = lib_on(quiet_perfctr_machine)
        lib.control(instr_all)
        a = lib.read().pmcs[0]
        b = lib.read().pmcs[0]
        c = lib.read().pmcs[0]
        assert a < b < c

    def test_control_resets_sums(self, quiet_perfctr_machine, instr_all):
        lib = lib_on(quiet_perfctr_machine)
        lib.control(instr_all)
        first = lib.read().pmcs[0]
        lib.control(instr_all)
        second = lib.read().pmcs[0]
        assert second <= first + 5  # fresh count, not an accumulation

    def test_stop_freezes_counts(self, quiet_perfctr_machine, instr_all):
        lib = lib_on(quiet_perfctr_machine)
        lib.control(instr_all)
        lib.stop()
        frozen = lib.read().pmcs[0]
        assert lib.read().pmcs[0] == frozen

    def test_fast_read_includes_tsc(self, quiet_perfctr_machine, instr_all):
        lib = lib_on(quiet_perfctr_machine)
        lib.control(instr_all, tsc_on=True)
        sample = lib.read()
        assert sample.tsc is not None and sample.tsc > 0

    def test_slow_read_has_no_tsc(self, quiet_perfctr_machine, instr_all):
        lib = lib_on(quiet_perfctr_machine)
        lib.control(instr_all, tsc_on=False)
        assert lib.read().tsc is None

    def test_user_filter_excludes_kernel_work(self, quiet_perfctr_machine):
        lib = lib_on(quiet_perfctr_machine)
        lib.control(((Event.INSTR_RETIRED, PrivFilter.USR),))
        a = lib.read().pmcs[0]
        quiet_perfctr_machine.syscall(335)  # a read syscall: kernel work
        b = lib.read().pmcs[0]
        lib.control(((Event.INSTR_RETIRED, PrivFilter.ALL),))
        a2 = lib.read().pmcs[0]
        quiet_perfctr_machine.syscall(335)
        b2 = lib.read().pmcs[0]
        assert (b2 - a2) > (b - a)  # ALL sees the kernel path, USR does not


class TestTscFastPathMechanism:
    """The Figure 4 mechanism: TSC off forces the syscall fallback."""

    def test_tsc_on_read_stays_in_user_mode(
        self, quiet_perfctr_machine, instr_all
    ):
        machine = quiet_perfctr_machine
        lib = lib_on(machine)
        lib.control(instr_all, tsc_on=True)
        before = dict(machine.syscalls.invocations)
        lib.read()
        assert machine.syscalls.invocations == before  # no kernel entry

    def test_tsc_off_read_enters_kernel(self, quiet_perfctr_machine, instr_all):
        machine = quiet_perfctr_machine
        lib = lib_on(machine)
        lib.control(instr_all, tsc_on=False)
        before = sum(machine.syscalls.invocations.values())
        lib.read()
        assert sum(machine.syscalls.invocations.values()) == before + 1

    def test_tsc_off_error_much_larger(self, instr_all):
        def rr_error(tsc_on: bool) -> int:
            machine = Machine(processor="CD", kernel="perfctr", seed=9,
                              io_interrupts=False)
            lib = lib_on(machine)
            lib.control(instr_all, tsc_on=tsc_on)
            a = lib.read().pmcs[0]
            b = lib.read().pmcs[0]
            return b - a

        assert rr_error(False) > 10 * rr_error(True)


class TestVirtualization:
    def test_counts_survive_context_switches(self):
        machine = Machine(processor="CD", kernel="perfctr", seed=11,
                          io_interrupts=False, quantum_ticks=1)
        machine.scheduler.spawn("other")
        lib = lib_on(machine)
        lib.control(((Event.INSTR_RETIRED, PrivFilter.USR),))
        before = lib.read().pmcs[0]
        # Run long enough for several quantum expirations.
        from repro.isa.work import WorkVector

        period = machine.core.freq.current_hz / machine.build.hz
        machine.core.retire(WorkVector(instructions=1000), cycles=3 * period)
        assert machine.scheduler.switches >= 1
        # Wait until our thread is scheduled again before reading.
        while machine.current_thread is not machine.main_thread:
            machine.core.retire(WorkVector.zero(), cycles=period)
        after = lib.read().pmcs[0]
        assert after >= before + 1000

    def test_resume_count_increments_on_switch(self):
        machine = Machine(processor="CD", kernel="perfctr", seed=11,
                          io_interrupts=False, quantum_ticks=1)
        machine.scheduler.spawn("other")
        lib = lib_on(machine)
        lib.control(((Event.INSTR_RETIRED, PrivFilter.USR),))
        state = machine.extension.state_of(machine.main_thread)
        start = state.resume_count
        from repro.isa.work import WorkVector

        period = machine.core.freq.current_hz / machine.build.hz
        for _ in range(6):
            machine.core.retire(WorkVector.zero(), cycles=period)
        assert state.resume_count > start


class TestKextValidation:
    def test_control_without_open(self, quiet_perfctr_machine, instr_all):
        control = VPerfctrControl(events=instr_all)
        with pytest.raises(CounterError, match="no vperfctr"):
            quiet_perfctr_machine.syscall(334, control)

"""Tests for repro.papi.multiplex — counter multiplexing."""

import pytest

from repro.core.benchmarks import LoopBenchmark, StridedLoadBenchmark
from repro.cpu.events import Event, PrivFilter
from repro.errors import ConfigurationError
from repro.kernel.system import Machine
from repro.papi.multiplex import _slice_loop, run_multiplexed

FOUR_EVENTS = (
    Event.INSTR_RETIRED,
    Event.BRANCHES_RETIRED,
    Event.LOADS_RETIRED,
    Event.TAKEN_BRANCHES,
)


def machine() -> Machine:
    return Machine(processor="CD", kernel="perfctr", seed=4,
                   io_interrupts=False)


class TestSliceLoop:
    def test_trips_partition(self):
        loop = LoopBenchmark(1003).as_loop()
        slices = _slice_loop(loop, 8)
        assert sum(s.trips for s in slices) == 1003

    def test_header_only_once(self):
        loop = LoopBenchmark(100).as_loop()
        slices = _slice_loop(loop, 4)
        total = sum(s.total_work().instructions for s in slices)
        assert total == loop.total_work().instructions

    def test_more_slices_than_trips(self):
        loop = LoopBenchmark(3).as_loop()
        slices = _slice_loop(loop, 8)
        assert sum(s.trips for s in slices) == 3
        assert all(s.trips > 0 for s in slices)


class TestRunMultiplexed:
    def test_uniform_estimates_accurate(self):
        result = run_multiplexed(
            machine(), FOUR_EVENTS, [StridedLoadBenchmark(400_000)],
            priv=PrivFilter.USR, slices_per_phase=8,
        )
        assert result.estimate(Event.LOADS_RETIRED) == pytest.approx(
            400_000, rel=0.02
        )
        assert result.estimate(Event.INSTR_RETIRED) == pytest.approx(
            2 + 4 * 400_000, rel=0.02
        )

    def test_within_budget_needs_no_extrapolation(self):
        result = run_multiplexed(
            machine(), (Event.INSTR_RETIRED, Event.BRANCHES_RETIRED),
            [LoopBenchmark(90_000)], priv=PrivFilter.USR, slices_per_phase=4,
        )
        # One group: every event observed in every slice.
        assert result.active_slices[Event.INSTR_RETIRED] == result.total_slices

    def test_coarse_phased_workload_is_biased(self):
        result = run_multiplexed(
            machine(), FOUR_EVENTS,
            [LoopBenchmark(200_000), StridedLoadBenchmark(150_000)],
            priv=PrivFilter.USR, slices_per_phase=1,
        )
        # Loads all sit in phase 2, which the loads group monopolizes:
        # extrapolation doubles them.
        assert result.estimate(Event.LOADS_RETIRED) == pytest.approx(
            2 * 150_000, rel=0.02
        )

    def test_observed_less_than_estimates(self):
        result = run_multiplexed(
            machine(), FOUR_EVENTS, [StridedLoadBenchmark(100_000)],
            priv=PrivFilter.USR, slices_per_phase=4,
        )
        for event in FOUR_EVENTS:
            assert result.observed[event] <= result.estimates[event]

    def test_unknown_event_lookup(self):
        result = run_multiplexed(
            machine(), (Event.INSTR_RETIRED,), [LoopBenchmark(1000)],
            priv=PrivFilter.USR, slices_per_phase=2,
        )
        with pytest.raises(ConfigurationError, match="not part"):
            result.estimate(Event.CYCLES)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one event"):
            run_multiplexed(machine(), (), [LoopBenchmark(10)])
        with pytest.raises(ConfigurationError, match="slices_per_phase"):
            run_multiplexed(
                machine(), (Event.INSTR_RETIRED,), [LoopBenchmark(10)],
                slices_per_phase=0,
            )

    def test_group_never_scheduled(self):
        # 2 groups but only 1 slice in total: group 2 never runs.
        with pytest.raises(ConfigurationError, match="never scheduled"):
            run_multiplexed(
                machine(), FOUR_EVENTS, [LoopBenchmark(10)],
                slices_per_phase=1,
            )

"""Tests for the PAPI layer (presets, event sets, low and high APIs)."""

import pytest

from repro.cpu.events import Event, PrivFilter
from repro.cpu.models import microarch
from repro.errors import ConfigurationError, CounterError, UnsupportedEventError
from repro.kernel.system import Machine
from repro.papi.eventset import EventSet
from repro.papi.highlevel import PapiHighLevel
from repro.papi.lowlevel import PapiLowLevel
from repro.papi.presets import PRESETS, Preset, event_to_preset, preset_to_event


class TestPresets:
    def test_every_preset_maps_to_an_event(self):
        for preset in Preset:
            assert preset in PRESETS

    @pytest.mark.parametrize("key", ["PD", "CD", "K8"])
    def test_all_presets_available_on_study_processors(self, key):
        uarch = microarch(key)
        for preset in Preset:
            assert preset_to_event(preset, uarch) is PRESETS[preset]

    def test_unavailable_preset_raises(self):
        from dataclasses import replace

        uarch = microarch("CD")
        trimmed = replace(
            uarch,
            key="CDX",
            event_codes={Event.INSTR_RETIRED: 0xC0},
        )
        with pytest.raises(UnsupportedEventError, match="no native event"):
            preset_to_event(Preset.PAPI_TOT_CYC, trimmed)

    def test_event_to_preset_round_trip(self):
        for preset, event in PRESETS.items():
            assert event_to_preset(event) is preset


class TestEventSet:
    def test_add_and_domain(self):
        es = EventSet(esi=1)
        es.add(Preset.PAPI_TOT_INS)
        es.set_domain(PrivFilter.ALL)
        assert es.n_events == 1

    def test_duplicate_event_rejected(self):
        es = EventSet(esi=1)
        es.add(Preset.PAPI_TOT_INS)
        with pytest.raises(ConfigurationError, match="already added"):
            es.add(Preset.PAPI_TOT_INS)

    def test_running_set_is_locked(self):
        es = EventSet(esi=1)
        es.add(Preset.PAPI_TOT_INS)
        es.running = True
        with pytest.raises(ConfigurationError, match="running"):
            es.add(Preset.PAPI_TOT_CYC)
        with pytest.raises(ConfigurationError, match="running"):
            es.set_domain(PrivFilter.ALL)

    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigurationError, match="domain"):
            EventSet(esi=1).set_domain(PrivFilter.NONE)


@pytest.fixture(params=["perfmon", "perfctr"])
def papi_low(request) -> PapiLowLevel:
    machine = Machine(processor="CD", kernel=request.param, seed=8,
                      io_interrupts=False)
    papi = PapiLowLevel(machine)
    papi.library_init()
    return papi


class TestLowLevel:
    def test_needs_extension(self):
        machine = Machine(kernel="vanilla", io_interrupts=False)
        with pytest.raises(ConfigurationError, match="extension"):
            PapiLowLevel(machine)

    def test_requires_init(self):
        machine = Machine(kernel="perfmon", io_interrupts=False)
        papi = PapiLowLevel(machine)
        with pytest.raises(CounterError, match="initialized"):
            papi.create_eventset()

    def test_start_read_stop_cycle(self, papi_low):
        esi = papi_low.create_eventset()
        papi_low.set_domain(esi, PrivFilter.ALL)
        papi_low.add_event(esi, Preset.PAPI_TOT_INS)
        papi_low.start(esi)
        first = papi_low.read(esi)
        second = papi_low.read(esi)
        final = papi_low.stop(esi)
        assert second[0] > first[0]
        assert final[0] >= second[0]

    def test_start_requires_events(self, papi_low):
        esi = papi_low.create_eventset()
        with pytest.raises(ConfigurationError, match="no events"):
            papi_low.start(esi)

    def test_double_start_rejected(self, papi_low):
        esi = papi_low.create_eventset()
        papi_low.add_event(esi, Preset.PAPI_TOT_INS)
        papi_low.start(esi)
        with pytest.raises(ConfigurationError, match="already running"):
            papi_low.start(esi)

    def test_reset_zeroes(self, papi_low):
        esi = papi_low.create_eventset()
        papi_low.add_event(esi, Preset.PAPI_TOT_INS)
        papi_low.start(esi)
        papi_low.stop(esi)
        papi_low.reset(esi)
        papi_low.start(esi)
        values = papi_low.stop(esi)
        # fresh count after the reset+restart, not an accumulation
        assert values[0] < 2000

    def test_accum_adds_and_resets(self, papi_low):
        esi = papi_low.create_eventset()
        papi_low.add_event(esi, Preset.PAPI_TOT_INS)
        papi_low.start(esi)
        totals = [0]
        papi_low.accum(esi, totals)
        first = totals[0]
        papi_low.accum(esi, totals)
        assert totals[0] > first

    def test_unknown_eventset(self, papi_low):
        with pytest.raises(CounterError, match="unknown event set"):
            papi_low.read(99)

    def test_destroy_running_rejected(self, papi_low):
        esi = papi_low.create_eventset()
        papi_low.add_event(esi, Preset.PAPI_TOT_INS)
        papi_low.start(esi)
        with pytest.raises(ConfigurationError, match="running"):
            papi_low.destroy_eventset(esi)

    def test_cleanup_and_destroy(self, papi_low):
        esi = papi_low.create_eventset()
        papi_low.add_event(esi, Preset.PAPI_TOT_INS)
        papi_low.cleanup_eventset(esi)
        papi_low.destroy_eventset(esi)
        with pytest.raises(CounterError, match="unknown"):
            papi_low.read(esi)


@pytest.fixture(params=["perfmon", "perfctr"])
def papi_high(request) -> PapiHighLevel:
    machine = Machine(processor="CD", kernel=request.param, seed=8,
                      io_interrupts=False)
    papi = PapiHighLevel(machine, domain=PrivFilter.ALL)
    papi.library_init()
    return papi


class TestHighLevel:
    def test_num_counters(self, papi_high):
        assert papi_high.num_counters() == 2  # CD

    def test_start_read_stop(self, papi_high):
        papi_high.start_counters([Preset.PAPI_TOT_INS])
        first = papi_high.read_counters()
        second = papi_high.read_counters()
        final = papi_high.stop_counters()
        assert first[0] > 0
        # read_counters RESETS: the second read is small again, not
        # cumulative — the reason rr/ro are unsupported (Table 2).
        assert second[0] < first[0] * 10
        assert final[0] >= 0

    def test_read_resets(self, papi_high):
        papi_high.start_counters([Preset.PAPI_TOT_INS])
        papi_high.read_counters()
        after_reset = papi_high.read_counters()
        # Only the instructions between the two reads are left.
        assert after_reset[0] < 3000

    def test_double_start_rejected(self, papi_high):
        papi_high.start_counters([Preset.PAPI_TOT_INS])
        with pytest.raises(CounterError, match="already started"):
            papi_high.start_counters([Preset.PAPI_TOT_INS])

    def test_read_requires_start(self, papi_high):
        with pytest.raises(CounterError, match="not started"):
            papi_high.read_counters()

    def test_stop_allows_restart(self, papi_high):
        papi_high.start_counters([Preset.PAPI_TOT_INS])
        papi_high.stop_counters()
        papi_high.start_counters([Preset.PAPI_TOT_CYC])
        assert papi_high.stop_counters()[0] >= 0

    def test_accum_counters(self, papi_high):
        papi_high.start_counters([Preset.PAPI_TOT_INS])
        totals = [0]
        papi_high.accum_counters(totals)
        assert totals[0] > 0


class TestLayerOverhead:
    """Figure 6's mechanism: each wrapper layer adds user instructions."""

    @staticmethod
    def ar_user_error(machine_kernel: str, level: str) -> int:
        from repro.core import (
            MeasurementConfig,
            Mode,
            NullBenchmark,
            Pattern,
            run_measurement,
        )

        infra = {"direct": "", "low": "PL", "high": "PH"}[level] + (
            "pm" if machine_kernel == "perfmon" else "pc"
        )
        config = MeasurementConfig(
            processor="CD", infra=infra, pattern=Pattern.START_READ,
            mode=Mode.USER, seed=4, io_interrupts=False,
        )
        return run_measurement(config, NullBenchmark()).error

    @pytest.mark.parametrize("kernel", ["perfmon", "perfctr"])
    def test_layering_strictly_increases_error(self, kernel):
        direct = self.ar_user_error(kernel, "direct")
        low = self.ar_user_error(kernel, "low")
        high = self.ar_user_error(kernel, "high")
        assert direct < low < high

    @pytest.mark.parametrize("kernel", ["perfmon", "perfctr"])
    def test_each_layer_adds_tens_of_instructions(self, kernel):
        low = self.ar_user_error(kernel, "low")
        high = self.ar_user_error(kernel, "high")
        assert 50 <= high - low <= 150

"""The perfctr fast read's context-switch detection.

The mapped-page read is only safe because it can *detect* that a
context switch invalidated its snapshot (the resume-count check, a
sequence-lock in the real perfctr).  These tests force a timer tick —
and with it a thread switch — into the middle of a fast read and check
the library retries rather than returning a torn value.
"""

from repro.cpu.events import Event, PrivFilter
from repro.isa.work import WorkVector
from repro.kernel.system import Machine
from repro.perfctr.libperfctr import LibPerfctr


def machine_with_contender() -> tuple[Machine, LibPerfctr]:
    machine = Machine(processor="CD", kernel="perfctr", seed=8,
                      io_interrupts=False, quantum_ticks=1)
    machine.scheduler.spawn("contender")
    lib = LibPerfctr(machine)
    lib.open()
    lib.control(((Event.INSTR_RETIRED, PrivFilter.USR),), tsc_on=True)
    return machine, lib


def advance_until_just_before_tick(machine: Machine, margin_cycles: float) -> None:
    """Run idle time so the next timer tick lands ``margin_cycles`` away."""
    controller = machine.controller
    horizon = controller.cycles_until_next(machine.core)
    assert horizon is not None
    if horizon > margin_cycles:
        machine.core.retire(
            WorkVector.zero(), cycles=horizon - margin_cycles
        )


class TestFastReadRetry:
    def test_switch_mid_read_forces_retry(self):
        machine, lib = machine_with_contender()
        state = machine.extension.state_of(machine.main_thread)
        # Place the tick inside the read's instruction footprint.
        advance_until_just_before_tick(machine, margin_cycles=10.0)
        resume_before = state.resume_count
        sample = lib.read()
        # Wait until we are scheduled again to assert cleanly.
        while machine.current_thread is not machine.main_thread:
            machine.core.retire(WorkVector.zero(), cycles=1000.0)
        assert state.resume_count > resume_before  # a switch happened
        assert sample.pmcs[0] >= 0  # and the read still returned sanely

    def test_value_consistent_despite_interruption(self):
        """The retried read's value must match a later quiet read,
        modulo the read's own instructions."""
        machine, lib = machine_with_contender()
        advance_until_just_before_tick(machine, margin_cycles=10.0)
        interrupted = lib.read().pmcs[0]
        while machine.current_thread is not machine.main_thread:
            machine.core.retire(WorkVector.zero(), cycles=1000.0)
        quiet = lib.read().pmcs[0]
        assert 0 < quiet - interrupted < 500

    def test_quiet_read_does_not_retry(self):
        machine, lib = machine_with_contender()
        state = machine.extension.state_of(machine.main_thread)
        resume_before = state.resume_count
        lib.read()
        assert state.resume_count == resume_before

"""Tests for repro.sampling — overflow-driven sampling."""

import pytest

from repro.core.benchmarks import LoopBenchmark
from repro.cpu.events import Event, PrivFilter
from repro.errors import ConfigurationError, CounterError
from repro.kernel.system import Machine
from repro.sampling.profiler import SamplingProfiler


def machine() -> Machine:
    return Machine(processor="K8", kernel="perfctr", seed=6,
                   io_interrupts=False)


class TestLifecycle:
    def test_start_stop(self):
        profiler = SamplingProfiler(machine(), period=100_000)
        profiler.start()
        profiler.stop()
        assert profiler.n_samples == 0

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(machine(), period=100_000)
        profiler.start()
        with pytest.raises(CounterError, match="already running"):
            profiler.start()

    def test_overflow_line_single_owner(self):
        m = machine()
        first = SamplingProfiler(m, period=100_000, counter_index=3)
        first.start()
        second = SamplingProfiler(m, period=100_000, counter_index=2)
        with pytest.raises(CounterError, match="claimed"):
            second.start()

    def test_pathological_period_rejected(self):
        with pytest.raises(ConfigurationError, match="pathological"):
            SamplingProfiler(machine(), period=10)

    def test_bad_counter_index(self):
        with pytest.raises(CounterError, match="no programmable counter"):
            SamplingProfiler(machine(), counter_index=9)

    def test_stop_idempotent(self):
        profiler = SamplingProfiler(machine(), period=100_000)
        profiler.start()
        profiler.stop()
        profiler.stop()


class TestSamplingBehaviour:
    def run_loop(self, m: Machine, iterations: int = 1_000_000) -> None:
        LoopBenchmark(iterations).run(m, address=0x0804_9000)

    def test_sample_count_tracks_period(self):
        m = machine()
        profiler = SamplingProfiler(m, event=Event.CYCLES, period=100_000)
        profiler.start()
        self.run_loop(m)
        profiler.stop()
        cycles = m.core.cycle
        expected = cycles / 100_000
        assert expected * 0.7 <= profiler.n_samples <= expected * 1.4

    def test_halving_period_doubles_samples(self):
        counts = []
        for period in (200_000, 100_000):
            m = machine()
            profiler = SamplingProfiler(m, event=Event.CYCLES, period=period)
            profiler.start()
            self.run_loop(m)
            profiler.stop()
            counts.append(profiler.n_samples)
        assert counts[1] == pytest.approx(2 * counts[0], rel=0.2)

    def test_samples_monotone_in_time(self):
        m = machine()
        profiler = SamplingProfiler(m, event=Event.CYCLES, period=150_000)
        profiler.start()
        self.run_loop(m)
        profiler.stop()
        cycles = [s.cycle for s in profiler.samples]
        assert cycles == sorted(cycles)
        assert all(s.index == i for i, s in enumerate(profiler.samples))

    def test_overhead_reported(self):
        m = machine()
        profiler = SamplingProfiler(m, event=Event.CYCLES, period=100_000)
        profiler.start()
        self.run_loop(m)
        profiler.stop()
        assert profiler.overhead_instructions() == (
            profiler.n_samples * SamplingProfiler.HANDLER_INSTRUCTIONS
        )

    def test_sampling_perturbs_concurrent_count(self):
        """The extension experiment's core claim, as a unit test."""
        def uk_count(with_sampling: bool) -> int:
            m = machine()
            pmu = m.core.pmu
            from repro.cpu.pmu import CounterConfig

            pmu.program(
                0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True)
            )
            profiler = None
            if with_sampling:
                profiler = SamplingProfiler(
                    m, event=Event.CYCLES, period=50_000, counter_index=3
                )
                profiler.start()
            self.run_loop(m)
            if profiler:
                profiler.stop()
            return pmu.read(0)

        assert uk_count(True) > uk_count(False) + 5_000

    def test_no_samples_after_stop(self):
        m = machine()
        profiler = SamplingProfiler(m, event=Event.CYCLES, period=100_000)
        profiler.start()
        self.run_loop(m, 200_000)
        profiler.stop()
        count = profiler.n_samples
        self.run_loop(m, 500_000)
        assert profiler.n_samples == count


class TestProfileAttribution:
    def test_samples_split_by_phase_cycle_share(self):
        """A sampling profile of a two-phase workload attributes samples
        in proportion to each phase's cycle share — the reason sampling
        exists despite its overhead."""
        from repro.core.benchmarks import StridedLoadBenchmark

        m = machine()
        profiler = SamplingProfiler(m, event=Event.CYCLES, period=20_000)
        profiler.start()
        start_cycle = m.core.cycle
        LoopBenchmark(200_000).run(m, 0x8049000)       # ALU phase
        boundary = m.core.cycle
        StridedLoadBenchmark(200_000).run(m, 0x804A000)  # memory phase
        end_cycle = m.core.cycle
        profiler.stop()

        phase1 = sum(
            1 for s in profiler.samples if start_cycle <= s.cycle < boundary
        )
        phase2 = sum(
            1 for s in profiler.samples if boundary <= s.cycle <= end_cycle
        )
        share1 = (boundary - start_cycle) / (end_cycle - start_cycle)
        total = phase1 + phase2
        assert total > 20
        assert phase1 / total == pytest.approx(share1, abs=0.1)
        # The memory phase dominates cycles, hence samples.
        assert phase2 > phase1

"""Tests for the perfmon2 extension and libpfm."""

import pytest

from repro.cpu.events import Event, PrivFilter
from repro.errors import CounterAllocationError, CounterError, SyscallError
from repro.kernel.system import Machine
from repro.perfmon.libpfm import LibPfm


def ready_lib(machine: Machine, events) -> LibPfm:
    lib = LibPfm(machine)
    lib.create_context()
    lib.write_pmcs(events)
    lib.write_pmds()
    lib.load_context()
    return lib


class TestLifecycle:
    def test_needs_perfmon_kernel(self, quiet_perfctr_machine):
        with pytest.raises(CounterError, match="perfmon-patched"):
            LibPfm(quiet_perfctr_machine)

    def test_operations_require_context(self, quiet_perfmon_machine):
        lib = LibPfm(quiet_perfmon_machine)
        with pytest.raises(CounterError, match="context"):
            lib.start()

    def test_load_before_write_pmcs_rejected(self, quiet_perfmon_machine):
        lib = LibPfm(quiet_perfmon_machine)
        lib.create_context()
        with pytest.raises(SyscallError, match="write_pmcs"):
            lib.load_context()

    def test_start_before_load_rejected(self, quiet_perfmon_machine, instr_all):
        lib = LibPfm(quiet_perfmon_machine)
        lib.create_context()
        lib.write_pmcs(instr_all)
        with pytest.raises(SyscallError, match="load"):
            lib.start()

    def test_too_many_counters(self, quiet_perfmon_machine):
        lib = LibPfm(quiet_perfmon_machine)
        lib.create_context()
        events = tuple(
            (ev, PrivFilter.ALL)
            for ev in (Event.INSTR_RETIRED, Event.CYCLES, Event.BRANCHES_RETIRED)
        )
        with pytest.raises(CounterAllocationError):
            lib.write_pmcs(events)  # CD has 2 counters

    def test_write_pmds_length_checked(self, quiet_perfmon_machine, instr_all):
        lib = LibPfm(quiet_perfmon_machine)
        lib.create_context()
        lib.write_pmcs(instr_all)
        with pytest.raises(SyscallError, match="values"):
            lib.write_pmds((0, 0))

    def test_read_count_validated(self, quiet_perfmon_machine, instr_all):
        lib = ready_lib(quiet_perfmon_machine, instr_all)
        lib.start()
        with pytest.raises(SyscallError, match="requested"):
            lib.read_pmds(5)


class TestCounting:
    def test_monotone_while_started(self, quiet_perfmon_machine, instr_all):
        lib = ready_lib(quiet_perfmon_machine, instr_all)
        lib.start()
        a = lib.read_pmds()[0]
        b = lib.read_pmds()[0]
        assert b > a

    def test_stop_freezes(self, quiet_perfmon_machine, instr_all):
        lib = ready_lib(quiet_perfmon_machine, instr_all)
        lib.start()
        lib.stop()
        frozen = lib.read_pmds()[0]
        assert lib.read_pmds()[0] == frozen

    def test_write_pmds_resets(self, quiet_perfmon_machine, instr_all):
        lib = ready_lib(quiet_perfmon_machine, instr_all)
        lib.start()
        lib.stop()
        lib.write_pmds()
        assert lib.read_pmds()[0] == 0

    def test_priming_with_values(self, quiet_perfmon_machine, instr_all):
        lib = ready_lib(quiet_perfmon_machine, instr_all)
        lib.write_pmds((1_000_000,))
        assert lib.read_pmds()[0] == 1_000_000

    def test_user_filter_excludes_kernel(self, quiet_perfmon_machine):
        lib = ready_lib(
            quiet_perfmon_machine, ((Event.INSTR_RETIRED, PrivFilter.USR),)
        )
        lib.start()
        a = lib.read_pmds()[0]
        b = lib.read_pmds()[0]
        user_delta = b - a
        # ~37 user instructions: the two stub halves (paper, Table 3).
        assert 30 <= user_delta <= 50

    def test_all_filter_includes_kernel(self, quiet_perfmon_machine, instr_all):
        lib = ready_lib(quiet_perfmon_machine, instr_all)
        lib.start()
        a = lib.read_pmds()[0]
        b = lib.read_pmds()[0]
        # Hundreds of kernel-path instructions (paper: ~726 median).
        assert b - a > 400

    def test_every_access_is_a_syscall(self, quiet_perfmon_machine, instr_all):
        machine = quiet_perfmon_machine
        lib = ready_lib(machine, instr_all)
        lib.start()
        before = sum(machine.syscalls.invocations.values())
        lib.read_pmds()
        lib.stop()
        assert sum(machine.syscalls.invocations.values()) == before + 2


class TestRegisterScaling:
    """Figure 5's mechanism: the kernel read loop costs ~100+ instr/counter."""

    def rr_delta(self, n_counters: int, priv: PrivFilter) -> int:
        machine = Machine(processor="K8", kernel="perfmon", seed=5,
                          io_interrupts=False)
        events = tuple(
            (ev, priv)
            for ev in (
                Event.INSTR_RETIRED,
                Event.CYCLES,
                Event.BRANCHES_RETIRED,
                Event.LOADS_RETIRED,
            )[:n_counters]
        )
        lib = ready_lib(machine, events)
        lib.start()
        a = lib.read_pmds()[0]
        b = lib.read_pmds()[0]
        return b - a

    def test_uk_error_grows_per_register(self):
        one = self.rr_delta(1, PrivFilter.ALL)
        four = self.rr_delta(4, PrivFilter.ALL)
        assert 80 <= (four - one) / 3 <= 130

    def test_user_error_register_independent(self):
        assert self.rr_delta(1, PrivFilter.USR) == self.rr_delta(4, PrivFilter.USR)


class TestVirtualization:
    def test_counts_survive_context_switches(self):
        machine = Machine(processor="K8", kernel="perfmon", seed=3,
                          io_interrupts=False, quantum_ticks=1)
        machine.scheduler.spawn("other")
        lib = ready_lib(machine, ((Event.INSTR_RETIRED, PrivFilter.USR),))
        lib.start()
        base = lib.read_pmds()[0]
        from repro.isa.work import WorkVector

        period = machine.core.freq.current_hz / machine.build.hz
        machine.core.retire(WorkVector(instructions=5000), cycles=4 * period)
        while machine.current_thread is not machine.main_thread:
            machine.core.retire(WorkVector.zero(), cycles=period)
        assert machine.scheduler.switches >= 1
        assert lib.read_pmds()[0] >= base + 5000

"""Tests for repro.tools — the standalone measurement tools."""

import pytest

from repro.core.benchmarks import LoopBenchmark
from repro.core.config import Mode
from repro.errors import ConfigurationError
from repro.tools.process import ProcessCosts
from repro.tools.standalone import Papiex, Perfex, Pfmon, make_tool


class TestProcessCosts:
    def test_totals(self):
        costs = ProcessCosts()
        assert costs.startup_total == (
            costs.execve_kernel + costs.dynamic_linker_user + costs.libc_init_user
        )
        assert costs.shutdown_total == costs.exit_user + costs.exit_kernel

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            ProcessCosts(execve_kernel=-1)

    def test_papiex_pays_extra_runtime(self):
        assert Papiex.process_costs.extra_runtime_user > 0
        assert Perfex.process_costs.extra_runtime_user == 0


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("perfex", Perfex), ("pfmon", Pfmon), ("papiex", Papiex),
    ])
    def test_make_tool(self, name, cls):
        tool = make_tool(name, io_interrupts=False)
        assert isinstance(tool, cls)

    def test_unknown_tool(self):
        with pytest.raises(ConfigurationError, match="unknown standalone tool"):
            make_tool("oprofile")


class TestWholeProcessError:
    @pytest.mark.parametrize("name", ["perfex", "pfmon", "papiex"])
    def test_error_includes_process_lifecycle(self, name):
        tool = make_tool(name, io_interrupts=False)
        report = tool.run(LoopBenchmark(1000), mode=Mode.USER_KERNEL)
        lifecycle = (
            tool.process_costs.startup_total + tool.process_costs.shutdown_total
        )
        assert report.error >= lifecycle
        # lifecycle + measurement overhead, but not wildly more
        assert report.error < lifecycle * 1.5

    def test_relative_error_shrinks_with_benchmark_size(self):
        small = make_tool("perfex", io_interrupts=False).run(LoopBenchmark(300))
        large = make_tool("perfex", io_interrupts=False).run(
            LoopBenchmark(3_000_000)
        )
        assert small.relative_error_percent > 100 * large.relative_error_percent

    def test_korn_et_al_magnitude(self):
        report = make_tool("papiex", io_interrupts=False).run(LoopBenchmark(300))
        assert report.relative_error_percent > 60_000

    def test_user_mode_excludes_kernel_lifecycle(self):
        uk = make_tool("pfmon", io_interrupts=False).run(
            LoopBenchmark(1000), mode=Mode.USER_KERNEL
        )
        user = make_tool("pfmon", io_interrupts=False).run(
            LoopBenchmark(1000), mode=Mode.USER
        )
        kernel_share = (
            Pfmon.process_costs.execve_kernel + Pfmon.process_costs.exit_kernel
        )
        assert uk.error - user.error >= kernel_share

    def test_report_fields(self):
        report = make_tool("perfex", io_interrupts=False).run(LoopBenchmark(500))
        assert report.tool == "perfex"
        assert report.benchmark_name == "loop"
        assert report.expected == 1 + 3 * 500

"""Tests for the repro CLI."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out
        assert "ext:sampling" in out

    def test_list_json(self, capsys):
        import json

        assert main(["list", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        by_id = {a["id"]: a for a in data["artifacts"]}
        assert by_id["figure4"]["kind"] == "paper"
        assert by_id["figure4"]["description"]
        assert by_id["ext:sampling"]["kind"] == "extension"


class TestReproduce:
    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Pentium D 925" in out

    def test_reproduce_with_repeats(self, capsys):
        assert main(["reproduce", "figure4", "--repeats", "1"]) == 0
        assert "read-read" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert main(["reproduce", "figure99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_invalid_repeats_rejected(self, capsys):
        assert main(["reproduce", "figure4", "--repeats", "0"]) == 2
        assert "repeats must be >= 1" in capsys.readouterr().err
        assert main(["reproduce", "figure4", "--repeats", "-3"]) == 2
        assert "repeats must be >= 1" in capsys.readouterr().err

    def test_invalid_repeats_rejected_for_submit_too(self, capsys):
        # validated before any connection is attempted
        assert main(["submit", "figure4", "--repeats", "0"]) == 2
        assert "repeats must be >= 1" in capsys.readouterr().err

    def test_cache_summary_line_on_stderr(self, capsys):
        from repro.exec import configure_default_cache

        configure_default_cache(enabled=True)
        assert main(["reproduce", "figure4", "--repeats", "1"]) == 0
        err = capsys.readouterr().err
        assert err.startswith("cache: ")
        assert "hits" in err and "misses" in err and "disk" in err


class TestMeasure:
    def test_null_measurement(self, capsys):
        assert main(["measure", "--infra", "pm", "--pattern", "rr",
                     "--mode", "user"]) == 0
        out = capsys.readouterr().out
        assert "error:" in out

    def test_loop_measurement(self, capsys):
        assert main(["measure", "--loop", "1000", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "expected 3001 instructions" in out

    def test_tsc_off(self, capsys):
        assert main(["measure", "--infra", "pc", "--no-tsc",
                     "--pattern", "rr"]) == 0
        out = capsys.readouterr().out
        assert "error:" in out

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["measure", "--infra", "oprofile"])


class TestAdvise:
    def test_advise_user_mode(self, capsys):
        assert main(["advise", "--processor", "CD", "--mode", "user"]) == 0
        out = capsys.readouterr().out
        assert "measure with pm" in out

    def test_advise_user_kernel(self, capsys):
        assert main(["advise", "--mode", "user+kernel"]) == 0
        out = capsys.readouterr().out
        assert "measure with pc" in out
        assert "duration" in out

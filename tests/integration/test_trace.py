"""Tests for repro.trace — retirement tracing and error attribution."""

from repro.core import (
    LoopBenchmark,
    MeasurementConfig,
    Mode,
    NullBenchmark,
    Pattern,
    run_measurement,
)
from repro.cpu.events import PrivLevel
from repro.trace import Tracer


def traced_measurement(benchmark=None, **kwargs):
    defaults = dict(processor="CD", infra="pc", pattern=Pattern.START_READ,
                    mode=Mode.USER_KERNEL, seed=9, io_interrupts=False)
    defaults.update(kwargs)
    config = MeasurementConfig(**defaults)
    tracer = Tracer()
    result = run_measurement(
        config, benchmark or NullBenchmark(), tracer=tracer
    )
    return result, tracer


class TestRecording:
    def test_records_labeled_paths(self):
        _result, tracer = traced_measurement()
        labels = {record.label for record in tracer.records}
        assert "libperfctr:control-post" in labels
        assert "kernel:syscall-entry" in labels

    def test_phases_cover_setup_and_measure(self):
        _result, tracer = traced_measurement()
        phases = {record.phase for record in tracer.records}
        assert {"setup", "measure"} <= phases

    def test_benchmark_phase_tagged(self):
        _result, tracer = traced_measurement(LoopBenchmark(1000))
        bench = [r for r in tracer.records if r.phase == "benchmark"]
        assert sum(r.instructions for r in bench) == 3001

    def test_modes_recorded(self):
        _result, tracer = traced_measurement()
        modes = {record.mode for record in tracer.records}
        assert modes == {PrivLevel.USER, PrivLevel.KERNEL}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        tracer.enabled = False
        config = MeasurementConfig(io_interrupts=False)
        run_measurement(config, NullBenchmark(), tracer=tracer)
        assert tracer.records == []

    def test_tracing_does_not_perturb_measurement(self):
        config = MeasurementConfig(seed=12, io_interrupts=False)
        plain = run_measurement(config, NullBenchmark())
        traced = run_measurement(config, NullBenchmark(), tracer=Tracer())
        assert plain.deltas == traced.deltas


class TestAttribution:
    def test_error_decomposes_into_paths(self):
        """The measured u+k error must equal the traced instructions of
        the measure phase between the sample points... which we bound:
        every traced measure-phase instruction is a candidate, and the
        error can never exceed that total."""
        result, tracer = traced_measurement()
        measure_total = tracer.total_instructions(phase="measure")
        assert 0 < result.error <= measure_total

    def test_by_path_sorted_and_aggregated(self):
        _result, tracer = traced_measurement()
        summaries = tracer.by_path()
        counts = [s.instructions for s in summaries]
        assert counts == sorted(counts, reverse=True)
        assert all(s.occurrences >= 1 for s in summaries)

    def test_mode_filter(self):
        _result, tracer = traced_measurement()
        kernel_paths = tracer.by_path(mode=PrivLevel.KERNEL)
        assert kernel_paths
        assert all(s.mode is PrivLevel.KERNEL for s in kernel_paths)

    def test_tsc_off_penalty_locates_in_slow_read(self):
        """The Figure 4 penalty must be attributable to the slow-read
        paths — the tracer shows *where* the error lives."""
        _result, tracer = traced_measurement(
            pattern=Pattern.READ_READ, tsc=False
        )
        top = tracer.by_path(phase="measure")[0]
        assert "slow-read" in top.label or "read-post" in top.label

    def test_render(self):
        _result, tracer = traced_measurement()
        text = tracer.render()
        assert "path" in text and "instr" in text
        assert len(text.splitlines()) > 3

    def test_clear(self):
        _result, tracer = traced_measurement()
        tracer.clear()
        assert tracer.total_instructions() == 0

"""Property-based tests of the study's cross-cutting invariants.

These encode relationships that must hold for *any* configuration —
the kind of structural truths the paper's methodology relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LoopBenchmark,
    MeasurementConfig,
    Mode,
    NullBenchmark,
    Pattern,
    run_measurement,
)
from repro.core.config import INFRASTRUCTURES

SETTINGS = settings(max_examples=25, deadline=None)

processors = st.sampled_from(["PD", "CD", "K8"])
infras = st.sampled_from(INFRASTRUCTURES)
direct_infras = st.sampled_from(["pm", "pc"])
patterns = st.sampled_from(list(Pattern))
start_patterns = st.sampled_from([Pattern.START_READ, Pattern.START_STOP])
seeds = st.integers(0, 2**31 - 1)


def config_for(infra, pattern, **kwargs):
    if infra.startswith("PH") and pattern.begins_with_read:
        pattern = Pattern.START_READ
    defaults = dict(infra=infra, pattern=pattern, io_interrupts=False)
    defaults.update(kwargs)
    return MeasurementConfig(**defaults)


class TestErrorInvariants:
    @SETTINGS
    @given(processor=processors, infra=infras, pattern=patterns, seed=seeds)
    def test_error_is_never_negative_without_interrupt_noise(
        self, processor, infra, pattern, seed
    ):
        """Without interrupts, the infrastructure can only ADD
        instructions — never remove them."""
        config = config_for(
            infra, pattern, processor=processor, mode=Mode.USER_KERNEL,
            seed=seed,
        )
        assert run_measurement(config, NullBenchmark()).error >= 0

    @SETTINGS
    @given(processor=processors, infra=infras, pattern=start_patterns,
           seed=seeds)
    def test_user_error_never_exceeds_user_kernel_error(
        self, processor, infra, pattern, seed
    ):
        """User-mode instructions are a subset of user+kernel ones."""
        def error(mode):
            config = config_for(
                infra, pattern, processor=processor, mode=mode, seed=seed
            )
            return run_measurement(config, NullBenchmark()).error

        assert error(Mode.USER) <= error(Mode.USER_KERNEL)

    @SETTINGS
    @given(processor=processors, infra=infras, pattern=start_patterns,
           seed=seeds)
    def test_modes_decompose(self, processor, infra, pattern, seed):
        """user + kernel counts = user+kernel counts, configuration by
        configuration (same seed => same execution)."""
        def measured(mode):
            config = config_for(
                infra, pattern, processor=processor, mode=mode, seed=seed
            )
            return run_measurement(config, NullBenchmark()).measured

        assert measured(Mode.USER) + measured(Mode.KERNEL) == measured(
            Mode.USER_KERNEL
        )

    @SETTINGS
    @given(infra=infras, pattern=patterns, seed=seeds,
           iters=st.integers(1, 200_000))
    def test_fixed_error_independent_of_benchmark_user_mode(
        self, infra, pattern, seed, iters
    ):
        """In user mode the error is a property of the infrastructure
        alone — any benchmark measures the same, up to the boundary
        skid of timer ticks that happen to land inside the run."""
        config = config_for(infra, pattern, mode=Mode.USER, seed=seed)
        null = run_measurement(config, NullBenchmark())
        loop = run_measurement(config, LoopBenchmark(iters))
        tolerance = 3 * (null.ticks + loop.ticks)
        assert abs(null.error - loop.error) <= tolerance


class TestDeterminism:
    @SETTINGS
    @given(processor=processors, infra=infras, pattern=patterns, seed=seeds)
    def test_same_seed_same_result(self, processor, infra, pattern, seed):
        config = config_for(
            infra, pattern, processor=processor, seed=seed,
        )
        a = run_measurement(config, NullBenchmark())
        b = run_measurement(config, NullBenchmark())
        assert a.deltas == b.deltas
        assert a.benchmark_address == b.benchmark_address


class TestGroundTruth:
    @SETTINGS
    @given(iters=st.integers(1, 10_000_000), infra=direct_infras,
           seed=seeds)
    def test_corrected_count_recovers_model_up_to_skid(self, iters, infra, seed):
        """error(loop) - error(null) == 0 in user mode, except for the
        per-interrupt boundary skid (Figure 8's mechanism): the deviation
        is bounded by the skid magnitude times the ticks that landed in
        the loop."""
        config = config_for(
            infra, Pattern.START_READ, processor="K8", mode=Mode.USER,
            seed=seed,
        )
        loop = run_measurement(config, LoopBenchmark(iters))
        null = run_measurement(config, NullBenchmark())
        corrected = loop.measured - null.measured
        max_skid = 3 * (loop.ticks + null.ticks)
        assert abs(corrected - (1 + 3 * iters)) <= max_skid

    @SETTINGS
    @given(iters=st.integers(1, 100_000), seed=seeds)
    def test_longer_benchmarks_never_measure_less(self, iters, seed):
        config = config_for(
            "pc", Pattern.START_READ, mode=Mode.USER_KERNEL, seed=seed
        )
        short = run_measurement(config, LoopBenchmark(iters)).measured
        long = run_measurement(config, LoopBenchmark(iters * 2)).measured
        assert long > short

"""The README's runnable claims must stay true."""

import pathlib
import re

from repro import (
    LoopBenchmark,
    MeasurementConfig,
    Mode,
    NullBenchmark,
    Pattern,
    run_measurement,
)

README = pathlib.Path(__file__).resolve().parents[2] / "README.md"


class TestQuickstartClaims:
    def test_quickstart_numbers(self):
        """The README quickstart says the pc/CD start-read u+k error is
        ~163 and the loop ground truth is 3000001."""
        cfg = MeasurementConfig(
            processor="CD", infra="pc", pattern=Pattern.START_READ,
            mode=Mode.USER_KERNEL, io_interrupts=False,
        )
        error = run_measurement(cfg, NullBenchmark()).error
        assert 150 <= error <= 200
        result = run_measurement(cfg, LoopBenchmark(1_000_000))
        assert result.expected == 3_000_001

    def test_package_docstring_example(self):
        """The example in repro/__init__.py's docstring prints 38."""
        cfg = MeasurementConfig(
            processor="K8", infra="pm", pattern=Pattern.READ_READ,
            mode=Mode.USER, io_interrupts=False,
        )
        assert run_measurement(cfg, NullBenchmark()).error == 38


class TestReadmeStructure:
    def test_readme_exists_and_cites_the_paper(self):
        text = README.read_text()
        assert "Accuracy of Performance Counter Measurements" in text
        assert "ISPASS" in text

    def test_reproduction_table_rows_exist(self):
        """Every artifact named in the README's status table has a
        runner."""
        from repro.experiments import ALL_EXPERIMENTS

        text = README.read_text()
        for artifact in ("Figure 4", "Figure 5", "Figure 9", "Figure 11"):
            assert artifact in text
        # and the registry covers the numbered figures 1-12 (figure 6
        # ships combined with table 3)
        numbered = {
            name for name in ALL_EXPERIMENTS if re.fullmatch(r"figure\d+", name)
        }
        assert numbered | {"figure6"} == {f"figure{i}" for i in range(1, 13)}
        assert "figure6+table3" in ALL_EXPERIMENTS

    def test_layout_section_matches_tree(self):
        text = README.read_text()
        root = README.parent
        for path in ("src/repro", "tests", "benchmarks", "examples",
                     "DESIGN.md", "EXPERIMENTS.md"):
            assert (root / path).exists(), path
            assert path.split("/")[-1] in text

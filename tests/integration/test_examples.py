"""Every example under examples/ must run to completion.

The examples are the package's front door; this test keeps them green
by importing each one as a module and calling its ``main()``.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        assert len(EXAMPLES) >= 6
        names = {path.stem for path in EXAMPLES}
        assert "quickstart" in names

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[path.stem for path in EXAMPLES]
    )
    def test_example_runs(self, path, capsys):
        module = load_example(path)
        assert hasattr(module, "main"), f"{path.name} must define main()"
        module.main()
        out = capsys.readouterr().out
        assert len(out.splitlines()) >= 3, f"{path.name} printed too little"

"""CLI observability: trace/metrics subcommands, stdout purity.

Several stdout consumers parse the CLI's output (``list --json``,
``submit``'s acknowledgement, artifact reports that are byte-compared
against local runs), so every diagnostic — cache summaries, structured
logs, trace confirmations — must land on stderr, and enabling tracing
must not change artifact output by a byte.
"""

import json
import re

import pytest

from repro.cli import main
from repro.obs.export import validate_trace_file
from repro.obs.logging import reset_logging


@pytest.fixture(autouse=True)
def _fresh_logging(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    reset_logging()
    yield
    reset_logging()


class TestTraceCommand:
    def test_breakdown_table(self, capsys):
        # A fresh seed so the shared result cache can't absorb the jobs
        # (cache hits skip measurement spans by design).
        assert main(["trace", "figure4", "--repeats", "1",
                     "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "trace of figure4" in out
        assert "layer" in out and "instructions" in out
        assert "measurement" in out
        assert "traced wall time:" in out

    def test_breakdown_total_matches_wall_time_within_5_percent(self, capsys):
        assert main(["trace", "figure4", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        total_row = next(
            line for line in out.splitlines() if line.startswith("total")
        )
        accounted = float(total_row.split()[2])
        wall = float(
            re.search(r"traced wall time: ([0-9.]+) s", out).group(1)
        )
        assert accounted == pytest.approx(wall, rel=0.05)

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        # A fresh seed so the shared result cache can't absorb the jobs
        # (cache hits skip measurement spans by design).
        assert main([
            "trace", "figure4", "--repeats", "1", "--seed", "7",
            "--trace-out", str(target),
        ]) == 0
        captured = capsys.readouterr()
        assert str(target) not in captured.out  # confirmation on stderr
        assert str(target) in captured.err
        assert validate_trace_file(target) == []
        events = json.loads(target.read_text())["traceEvents"]
        assert {e["cat"] for e in events} >= {"cli", "measurement"}

    def test_unknown_artifact(self, capsys):
        assert main(["trace", "nope"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_invalid_repeats_rejected(self, capsys):
        assert main(["trace", "figure4", "--repeats", "0"]) == 2
        assert "repeats must be >= 1" in capsys.readouterr().err


class TestMetricsCommand:
    def test_dumps_unified_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_jobs_submitted_total counter" in out
        assert "repro_executor_jobs" in out
        assert "repro_spans_started" in out
        assert "repro_artifact_duration_seconds" in out

    def test_matches_service_registry_inventory(self, capsys):
        from repro.obs.metrics import build_unified_registry

        assert main(["metrics"]) == 0
        cli_names = {
            line.split()[2]
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("# TYPE")
        }
        service_names = {
            line.split()[2]
            for line in build_unified_registry().render().splitlines()
            if line.startswith("# TYPE")
        }
        assert cli_names == service_names


class TestStdoutPurity:
    def test_list_json_clean_with_logging_enabled(self, capsys):
        assert main(["--log-json", "list", "--json"]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)  # would raise if logs leaked
        assert data["artifacts"]

    def test_list_json_clean_with_env_logging(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG", "stderr")
        reset_logging()
        assert main(["list", "--json"]) == 0
        json.loads(capsys.readouterr().out)

    def test_reproduce_stdout_identical_with_tracing(self, tmp_path, capsys):
        assert main(["reproduce", "figure4", "--repeats", "1"]) == 0
        plain = capsys.readouterr().out
        assert main([
            "reproduce", "figure4", "--repeats", "1",
            "--trace-out", str(tmp_path / "trace.json"),
        ]) == 0
        traced = capsys.readouterr()
        assert traced.out == plain  # byte-identical artifact output
        assert "trace:" in traced.err
        assert "cache:" in traced.err

    def test_cache_summary_stays_on_stderr(self, capsys):
        assert main(["reproduce", "figure4", "--repeats", "1"]) == 0
        captured = capsys.readouterr()
        assert "cache:" not in captured.out
        assert "cache:" in captured.err


class TestSubmitPurity:
    def test_submit_stdout_is_one_parseable_line(self, capsys):
        from repro.service.server import ServiceInThread

        with ServiceInThread(workers=1, slow_job_threshold=None) as service:
            assert main([
                "--log-json", "submit", "figure4", "--repeats", "1",
                "--port", str(service.port),
            ]) == 0
            captured = capsys.readouterr()
        lines = captured.out.splitlines()
        assert len(lines) == 1
        assert re.fullmatch(r"submitted (job-\S+) \(\w+\)", lines[0])
        assert "trace: " in captured.err  # trace id lands on stderr

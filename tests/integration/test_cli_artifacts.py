"""CLI coverage for extension artifacts and option plumbing."""

import pytest

from repro.cli import main


class TestReproduceExtensions:
    def test_reproduce_extension_artifact(self, capsys):
        assert main(["reproduce", "ext:thread-isolation"]) == 0
        out = capsys.readouterr().out
        assert "virtual count" in out

    def test_reproduce_structural_figures(self, capsys):
        assert main(["reproduce", "figure2"]) == 0
        assert main(["reproduce", "figure3"]) == 0
        out = capsys.readouterr().out
        assert "libpapi" in out
        assert "movl $0, %eax" in out

    def test_seed_flag_changes_sampled_artifacts(self, capsys):
        assert main(["reproduce", "figure9", "--repeats", "2",
                     "--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["reproduce", "figure9", "--repeats", "2",
                     "--seed", "2"]) == 0
        second = capsys.readouterr().out
        assert first != second

    def test_seed_flag_reproducible(self, capsys):
        assert main(["reproduce", "figure9", "--repeats", "2",
                     "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["reproduce", "figure9", "--repeats", "2",
                     "--seed", "3"]) == 0
        assert capsys.readouterr().out == first


class TestMeasureOptions:
    def test_counters_flag(self, capsys):
        assert main(["measure", "--processor", "K8", "--infra", "pm",
                     "--counters", "3", "--mode", "user+kernel"]) == 0
        out = capsys.readouterr().out
        assert "3 counter(s)" in out

    def test_measure_on_extension_platform(self, capsys):
        assert main(["measure", "--processor", "P3", "--infra", "pm"]) == 0
        assert "P3" in capsys.readouterr().out

    def test_measure_rejects_overbudget_counters(self):
        with pytest.raises(Exception):
            main(["measure", "--processor", "CD", "--counters", "9"])

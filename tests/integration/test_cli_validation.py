"""Structured CLI validation: bad knobs exit 2 with one-line errors.

A user who types ``--jobs 0`` gets ``error: ...`` on stderr and exit
code 2 — never a traceback from deep inside the engine or the service
stack.
"""

import pytest

from repro.backend import set_default_backend
from repro.cli import main
from repro.exec import set_default_batch, set_default_jobs


@pytest.fixture(autouse=True)
def clean_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    yield
    set_default_jobs(None)
    set_default_batch(None)
    set_default_backend(None)


def expect_error(capsys, argv, message):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert message in err
    assert "Traceback" not in err


class TestJobsValidation:
    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_non_positive_jobs_exit_2(self, capsys, bad):
        expect_error(
            capsys, ["reproduce", "figure4", "--jobs", bad],
            f"error: jobs must be >= 1, got {bad}",
        )

    def test_bad_env_jobs_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        expect_error(
            capsys, ["reproduce", "figure4"],
            "error: REPRO_JOBS must be an integer",
        )

    def test_trace_validates_jobs_too(self, capsys):
        expect_error(
            capsys, ["trace", "figure4", "--jobs", "0"],
            "error: jobs must be >= 1, got 0",
        )


class TestBatchSizeValidation:
    @pytest.mark.parametrize("bad", ["0", "-2"])
    def test_non_positive_batch_size_exit_2(self, capsys, bad):
        expect_error(
            capsys, ["reproduce", "figure4", "--batch-size", bad],
            f"error: batch size must be >= 1, got {bad}",
        )

    def test_bad_env_batch_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "many")
        expect_error(
            capsys, ["reproduce", "figure4"],
            "error: REPRO_BATCH must be an integer",
        )

    def test_trace_validates_batch_size_too(self, capsys):
        expect_error(
            capsys, ["trace", "figure4", "--batch-size", "0"],
            "error: batch size must be >= 1, got 0",
        )


class TestBackendValidation:
    def test_unknown_backend_exit_2(self, capsys):
        expect_error(
            capsys, ["reproduce", "figure4", "--backend", "bogus"],
            "error: unknown backend 'bogus'; known: inline, pool, warm",
        )

    def test_bad_env_backend_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "turbo")
        expect_error(
            capsys, ["reproduce", "figure4"],
            "error: unknown backend 'turbo'",
        )

    def test_explicit_backend_shadows_bad_env(self, capsys, monkeypatch):
        # An explicit --backend must win before the env var is even read.
        monkeypatch.setenv("REPRO_BACKEND", "turbo")
        assert main(["reproduce", "figure4", "--backend", "inline"]) == 0
        capsys.readouterr()

    def test_trace_validates_backend_too(self, capsys):
        expect_error(
            capsys, ["trace", "figure4", "--backend", "bogus"],
            "error: unknown backend 'bogus'",
        )

    def test_serve_validates_backend_too(self, capsys):
        expect_error(
            capsys, ["serve", "--backend", "bogus"],
            "error: unknown backend 'bogus'",
        )


class TestServeValidation:
    def test_non_positive_workers_exit_2(self, capsys):
        expect_error(
            capsys, ["serve", "--workers", "0"],
            "error: workers must be >= 1, got 0",
        )

    def test_non_positive_queue_depth_exit_2(self, capsys):
        expect_error(
            capsys, ["serve", "--queue-depth", "-1"],
            "error: queue-depth must be >= 1, got -1",
        )

    def test_non_positive_request_timeout_exit_2(self, capsys):
        expect_error(
            capsys, ["serve", "--request-timeout", "0"],
            "error: request-timeout must be > 0, got 0.0",
        )

"""Structured CLI validation: bad knobs exit 2 with one-line errors.

A user who types ``--jobs 0`` gets ``error: ...`` on stderr and exit
code 2 — never a traceback from deep inside the engine or the service
stack.
"""

import pytest

from repro.backend import set_default_backend, set_default_deadline
from repro.chaos import reset_chaos
from repro.cli import main
from repro.exec import set_default_batch, set_default_jobs


@pytest.fixture(autouse=True)
def clean_defaults(monkeypatch):
    from repro.cpu import fastforward

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_DEADLINE", raising=False)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_FF", raising=False)
    monkeypatch.delenv("REPRO_FF_WARMUP", raising=False)
    yield
    set_default_jobs(None)
    set_default_batch(None)
    set_default_backend(None)
    set_default_deadline(None)
    reset_chaos()
    fastforward.reset_fastforward()


def expect_error(capsys, argv, message):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert message in err
    assert "Traceback" not in err


class TestJobsValidation:
    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_non_positive_jobs_exit_2(self, capsys, bad):
        expect_error(
            capsys, ["reproduce", "figure4", "--jobs", bad],
            f"error: jobs must be >= 1, got {bad}",
        )

    def test_bad_env_jobs_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        expect_error(
            capsys, ["reproduce", "figure4"],
            "error: REPRO_JOBS must be an integer",
        )

    def test_trace_validates_jobs_too(self, capsys):
        expect_error(
            capsys, ["trace", "figure4", "--jobs", "0"],
            "error: jobs must be >= 1, got 0",
        )


class TestBatchSizeValidation:
    @pytest.mark.parametrize("bad", ["0", "-2"])
    def test_non_positive_batch_size_exit_2(self, capsys, bad):
        expect_error(
            capsys, ["reproduce", "figure4", "--batch-size", bad],
            f"error: batch size must be >= 1, got {bad}",
        )

    def test_bad_env_batch_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "many")
        expect_error(
            capsys, ["reproduce", "figure4"],
            "error: REPRO_BATCH must be an integer",
        )

    def test_trace_validates_batch_size_too(self, capsys):
        expect_error(
            capsys, ["trace", "figure4", "--batch-size", "0"],
            "error: batch size must be >= 1, got 0",
        )


class TestBackendValidation:
    def test_unknown_backend_exit_2(self, capsys):
        expect_error(
            capsys, ["reproduce", "figure4", "--backend", "bogus"],
            "error: unknown backend 'bogus'; known: inline, pool, warm",
        )

    def test_bad_env_backend_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "turbo")
        expect_error(
            capsys, ["reproduce", "figure4"],
            "error: unknown backend 'turbo'",
        )

    def test_explicit_backend_shadows_bad_env(self, capsys, monkeypatch):
        # An explicit --backend must win before the env var is even read.
        monkeypatch.setenv("REPRO_BACKEND", "turbo")
        assert main(["reproduce", "figure4", "--backend", "inline"]) == 0
        capsys.readouterr()

    def test_trace_validates_backend_too(self, capsys):
        expect_error(
            capsys, ["trace", "figure4", "--backend", "bogus"],
            "error: unknown backend 'bogus'",
        )

    def test_serve_validates_backend_too(self, capsys):
        expect_error(
            capsys, ["serve", "--backend", "bogus"],
            "error: unknown backend 'bogus'",
        )


class TestChaosValidation:
    def test_unknown_fault_point_exit_2(self, capsys):
        expect_error(
            capsys, ["reproduce", "figure4", "--chaos", "bogus-point"],
            "error: unknown chaos fault point 'bogus-point'",
        )

    def test_malformed_parameter_exit_2(self, capsys):
        expect_error(
            capsys, ["reproduce", "figure4", "--chaos", "worker-kill:p"],
            "error: chaos parameter must be key=value",
        )

    def test_out_of_range_probability_exit_2(self, capsys):
        expect_error(
            capsys, ["reproduce", "figure4", "--chaos", "worker-kill:p=2"],
            "error: chaos probability must be in [0, 1]",
        )

    def test_bad_env_chaos_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "bogus-point")
        expect_error(
            capsys, ["reproduce", "figure4"],
            "error: unknown chaos fault point 'bogus-point'",
        )

    def test_explicit_chaos_shadows_bad_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "bogus-point")
        assert main(
            ["reproduce", "figure4", "--chaos", "worker-kill:p=0"]
        ) == 0
        capsys.readouterr()

    def test_env_chaos_reaches_the_injector(self, capsys, monkeypatch):
        from repro.chaos import get_injector

        monkeypatch.setenv("REPRO_CHAOS", "worker-kill:p=0,seed=5")
        assert main(["reproduce", "figure4"]) == 0
        capsys.readouterr()
        assert get_injector().configured("worker-kill")

    def test_trace_validates_chaos_too(self, capsys):
        expect_error(
            capsys, ["trace", "figure4", "--chaos", "bogus-point"],
            "error: unknown chaos fault point",
        )

    def test_serve_validates_chaos_too(self, capsys):
        expect_error(
            capsys, ["serve", "--chaos", "bogus-point"],
            "error: unknown chaos fault point",
        )


class TestFastForwardValidation:
    def test_unknown_mode_exit_2(self, capsys):
        expect_error(
            capsys, ["reproduce", "figure4", "--fast-forward", "bogus"],
            "error: fast-forward mode must be one of auto, on, off; "
            "got 'bogus'",
        )

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_non_positive_warmup_exit_2(self, capsys, bad):
        expect_error(
            capsys, ["reproduce", "figure4", "--ff-warmup", bad],
            f"error: fast-forward warmup must be an integer >= 1, got {bad}",
        )

    def test_bad_env_mode_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FF", "warp")
        # The env default is resolved lazily, but an explicit warmup flag
        # forces the mode chain to be read — and validated — eagerly.
        expect_error(
            capsys, ["reproduce", "figure4", "--ff-warmup", "8"],
            "error: fast-forward mode must be one of auto, on, off",
        )

    def test_bad_env_warmup_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FF_WARMUP", "soon")
        expect_error(
            capsys, ["reproduce", "figure4", "--fast-forward", "on"],
            "error: fast-forward warmup must be an integer >= 1, got 'soon'",
        )

    def test_explicit_flags_shadow_bad_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FF", "warp")
        monkeypatch.setenv("REPRO_FF_WARMUP", "soon")
        assert main(
            ["reproduce", "figure4", "--fast-forward", "on",
             "--ff-warmup", "2"]
        ) == 0
        capsys.readouterr()

    def test_trace_validates_fast_forward_too(self, capsys):
        expect_error(
            capsys, ["trace", "figure4", "--fast-forward", "bogus"],
            "error: fast-forward mode must be one of auto, on, off",
        )

    def test_serve_validates_fast_forward_too(self, capsys):
        expect_error(
            capsys, ["serve", "--fast-forward", "bogus"],
            "error: fast-forward mode must be one of auto, on, off",
        )

    def test_serve_validates_warmup_too(self, capsys):
        expect_error(
            capsys, ["serve", "--ff-warmup", "0"],
            "error: fast-forward warmup must be an integer >= 1, got 0",
        )


class TestBenchGateValidation:
    def test_garbage_gate_env_exit_2(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.setenv("REPRO_BENCH_GATE", "squishy")
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"benchmarks": [
            {"name": "b", "stats": {"mean": 1.0}},
        ]}))
        expect_error(
            capsys, ["bench", "diff", str(path), str(path)],
            "error: REPRO_BENCH_GATE must be advisory or hard, "
            "got 'squishy'",
        )


class TestDeadlineValidation:
    @pytest.mark.parametrize("bad", ["0", "-1.5"])
    def test_non_positive_deadline_exit_2(self, capsys, bad):
        expect_error(
            capsys, ["reproduce", "figure4", "--deadline", bad],
            "error: deadline must be > 0 seconds",
        )

    def test_bad_env_deadline_exit_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "soon")
        # The env chain is consulted lazily by the backend; the CLI
        # flag path itself must still validate eagerly.
        expect_error(
            capsys, ["reproduce", "figure4", "--deadline", "0"],
            "error: deadline must be > 0 seconds",
        )

    def test_serve_validates_deadline_too(self, capsys):
        expect_error(
            capsys, ["serve", "--deadline", "0"],
            "error: deadline must be > 0 seconds",
        )


class TestServeValidation:
    def test_non_positive_workers_exit_2(self, capsys):
        expect_error(
            capsys, ["serve", "--workers", "0"],
            "error: workers must be >= 1, got 0",
        )

    def test_non_positive_queue_depth_exit_2(self, capsys):
        expect_error(
            capsys, ["serve", "--queue-depth", "-1"],
            "error: queue-depth must be >= 1, got -1",
        )

    def test_non_positive_request_timeout_exit_2(self, capsys):
        expect_error(
            capsys, ["serve", "--request-timeout", "0"],
            "error: request-timeout must be > 0, got 0.0",
        )


class TestFleetValidation:
    def test_non_positive_shards_exit_2(self, capsys):
        expect_error(
            capsys, ["fleet", "serve", "--shards", "0"],
            "error: shards must be >= 1, got 0",
        )

    def test_non_positive_workers_exit_2(self, capsys):
        expect_error(
            capsys, ["fleet", "serve", "--workers", "-1"],
            "error: workers must be >= 1, got -1",
        )

    def test_non_positive_queue_depth_exit_2(self, capsys):
        expect_error(
            capsys, ["fleet", "serve", "--queue-depth", "0"],
            "error: queue-depth must be >= 1, got 0",
        )

    def test_non_positive_request_timeout_exit_2(self, capsys):
        expect_error(
            capsys, ["fleet", "serve", "--request-timeout", "0"],
            "error: request-timeout must be > 0, got 0.0",
        )

    def test_bad_chaos_spec_exit_2(self, capsys):
        expect_error(
            capsys, ["fleet", "serve", "--chaos", "warp-core:p=1"],
            "error: unknown chaos fault point 'warp-core'",
        )


class TestLoadtestValidation:
    @pytest.mark.parametrize(
        "flag", ["--shards", "--workers", "--clients", "--requests",
                 "--distinct", "--loop-iters"],
    )
    def test_non_positive_knobs_exit_2(self, capsys, flag):
        expect_error(
            capsys, ["loadtest", flag, "0"],
            f"error: {flag.lstrip('-')} must be >= 1, got 0",
        )

    def test_host_without_port_exit_2(self, capsys):
        expect_error(
            capsys, ["loadtest", "--host", "127.0.0.1"],
            "error: --host requires --port",
        )

"""Pinned golden outputs: the fast path must not move a single byte.

``tests/integration/golden/*.txt`` were captured from ``repro
reproduce`` before the snapshot/batching/memoization fast path landed.
Serial, parallel, and batched runs must all still reproduce them
byte-for-byte — the optimization layers are pure plumbing.

If a deliberate model change moves these numbers, regenerate the
goldens with::

    PYTHONPATH=src python -m repro reproduce figure9 > \
        tests/integration/golden/figure9.txt 2>/dev/null

and say so in the commit message.
"""

from pathlib import Path

import pytest

from repro.backend import set_default_backend
from repro.chaos import reset_chaos
from repro.cli import main
from repro.exec import set_default_batch, set_default_jobs

GOLDEN = Path(__file__).parent / "golden"

#: Every execution backend must reproduce the goldens byte-for-byte.
BACKENDS = ["inline", "pool", "warm"]


@pytest.fixture(autouse=True)
def clean_defaults(monkeypatch):
    from repro.cpu import fastforward

    monkeypatch.delenv("REPRO_FF", raising=False)
    monkeypatch.delenv("REPRO_FF_WARMUP", raising=False)
    yield
    set_default_jobs(None)
    set_default_batch(None)
    set_default_backend(None)
    fastforward.reset_fastforward()
    reset_chaos()


def reproduce(capsys, artifact, *flags):
    assert main(["reproduce", artifact, *flags]) == 0
    return capsys.readouterr().out


class TestGoldenFigure9:
    def test_serial_matches_golden(self, capsys):
        golden = (GOLDEN / "figure9.txt").read_text()
        assert reproduce(capsys, "figure9") == golden

    def test_parallel_jobs4_matches_golden(self, capsys):
        golden = (GOLDEN / "figure9.txt").read_text()
        assert reproduce(capsys, "figure9", "--jobs", "4") == golden

    def test_batched_dispatch_matches_golden(self, capsys):
        golden = (GOLDEN / "figure9.txt").read_text()
        out = reproduce(
            capsys, "figure9", "--jobs", "2", "--batch-size", "5"
        )
        assert out == golden

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_matches_golden(self, capsys, backend):
        golden = (GOLDEN / "figure9.txt").read_text()
        out = reproduce(
            capsys, "figure9", "--jobs", "2", "--backend", backend
        )
        assert out == golden


class TestGoldenFastForward:
    """The symbolic fast-forward engine must not move a single byte,
    in any mode, through any backend, even when chaos revives the
    workers mid-plan."""

    @pytest.mark.parametrize("mode", ["auto", "on", "off"])
    def test_every_mode_matches_golden(self, capsys, mode):
        golden = (GOLDEN / "figure9.txt").read_text()
        out = reproduce(capsys, "figure9", "--fast-forward", mode)
        assert out == golden

    def test_ff_on_low_warmup_matches_golden(self, capsys):
        golden = (GOLDEN / "figure9.txt").read_text()
        out = reproduce(
            capsys, "figure9", "--fast-forward", "on", "--ff-warmup", "1"
        )
        assert out == golden

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ff_on_through_every_backend(self, capsys, backend):
        golden = (GOLDEN / "figure4.txt").read_text()
        out = reproduce(
            capsys, "figure4", "--jobs", "2", "--backend", backend,
            "--fast-forward", "on",
        )
        assert out == golden

    def test_ff_on_with_worker_kill_chaos(self, capsys):
        """A revived warm worker re-derives its fast-forward state from
        its own observations; the output stays golden."""
        golden = (GOLDEN / "figure9.txt").read_text()
        out = reproduce(
            capsys, "figure9", "--jobs", "2", "--backend", "warm",
            "--fast-forward", "on",
            "--chaos", "worker-kill:p=0.3,seed=11",
        )
        assert out == golden


class TestGoldenFigure4:
    def test_serial_matches_golden(self, capsys):
        golden = (GOLDEN / "figure4.txt").read_text()
        assert reproduce(capsys, "figure4") == golden

    def test_parallel_matches_golden(self, capsys):
        golden = (GOLDEN / "figure4.txt").read_text()
        assert reproduce(capsys, "figure4", "--jobs", "4") == golden

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_matches_golden(self, capsys, backend):
        golden = (GOLDEN / "figure4.txt").read_text()
        out = reproduce(
            capsys, "figure4", "--jobs", "2", "--backend", backend
        )
        assert out == golden

"""Failure injection: the stack must fail loudly and recover cleanly."""

import pytest

from repro.cpu.events import Event, PrivFilter, PrivLevel
from repro.cpu.pmu import CounterConfig
from repro.errors import (
    CounterError,
    PrivilegeError,
    SyscallError,
    UnsupportedPatternError,
)
from repro.isa.work import WorkVector
from repro.kernel.system import Machine
from repro.perfctr.libperfctr import LibPerfctr
from repro.perfmon.libpfm import LibPfm


class TestPrivilegeViolations:
    def test_user_code_cannot_program_counters_directly(self):
        machine = Machine(io_interrupts=False)
        with pytest.raises(PrivilegeError):
            machine.core.wrmsr(0x186, 0)

    def test_rdpmc_fault_leaves_machine_usable(self):
        machine = Machine(kernel="vanilla", io_interrupts=False)
        with pytest.raises(PrivilegeError):
            machine.core.rdpmc(0)
        # The machine still works after the fault.
        machine.core.retire(WorkVector(instructions=10))
        assert machine.core.mode is PrivLevel.USER

    def test_vanilla_kernel_never_enables_user_rdpmc(self):
        machine = Machine(kernel="vanilla", io_interrupts=False)
        assert not machine.core.user_rdpmc_enabled


class TestProtocolViolations:
    def test_perfctr_read_before_control(self, quiet_perfctr_machine):
        lib = LibPerfctr(quiet_perfctr_machine)
        lib.open()
        with pytest.raises(CounterError, match="programmed"):
            lib.read()

    def test_perfmon_sequence_enforced_at_each_step(
        self, quiet_perfmon_machine
    ):
        lib = LibPfm(quiet_perfmon_machine)
        lib.create_context()
        with pytest.raises(SyscallError):
            quiet_perfmon_machine.syscall(344)  # pfm_start before load
        # After the failure the context is still usable.
        lib.write_pmcs(((Event.INSTR_RETIRED, PrivFilter.ALL),))
        lib.write_pmds()
        lib.load_context()
        lib.start()
        assert lib.read_pmds()[0] >= 0

    def test_failed_syscall_restores_user_mode(self, quiet_perfmon_machine):
        with pytest.raises(SyscallError):
            quiet_perfmon_machine.syscall(346, 1)  # read without context
        assert quiet_perfmon_machine.core.mode is PrivLevel.USER

    def test_unsupported_pattern_reports_not_crashes(self):
        from repro.core import MeasurementConfig, NullBenchmark, Pattern, run_measurement

        config = MeasurementConfig(
            infra="PHpc", pattern=Pattern.READ_READ, io_interrupts=False
        )
        with pytest.raises(UnsupportedPatternError, match="resets"):
            run_measurement(config, NullBenchmark())


class TestCounterOverflowMidMeasurement:
    def test_wraparound_corrupts_naive_differencing(self):
        """A counter wrapping inside the window makes c1 < c0 — the
        classic fine-grained measurement hazard; the PMU wraps silently
        (as hardware does) and the harness surfaces the negative delta
        instead of masking it."""
        machine = Machine(processor="CD", kernel="vanilla",
                          io_interrupts=False)
        pmu = machine.core.pmu
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR, True))
        pmu.write(0, pmu.counters[0].limit - 100)
        c0 = pmu.read(0)
        machine.core.retire(WorkVector(instructions=500))
        c1 = pmu.read(0)
        assert c1 < c0  # wrapped
        assert (c1 - c0) % pmu.counters[0].limit == 500  # modulo recovers

    def test_extension_virtual_counters_are_64bit(self):
        """perfmon's virtualized counters absorb hardware wraps: the
        visible (virtual) count keeps increasing even though the
        40-bit hardware register would wrap."""
        machine = Machine(processor="CD", kernel="perfmon", seed=1,
                          io_interrupts=False)
        lib = LibPfm(machine)
        lib.create_context()
        lib.write_pmcs(((Event.INSTR_RETIRED, PrivFilter.USR),))
        lib.write_pmds((2**40 - 1000,))  # virtual count near 2^40
        lib.load_context()
        lib.start()
        machine.core.retire(WorkVector(instructions=5000))
        value = lib.read_pmds()[0]
        assert value > 2**40  # no wrap at the virtual level


class TestInterruptStorms:
    def test_io_storm_inflates_uk_error_but_not_user(self):
        from dataclasses import replace

        from repro.kernel.calibration import PERFCTR_BUILD

        storm = replace(
            PERFCTR_BUILD, name="perfctr-storm", io_irq_rate_hz=5_000.0
        )

        def run(mode_priv):
            machine = Machine(processor="CD", kernel=storm, seed=3)
            lib = LibPerfctr(machine)
            lib.open()
            lib.control(((Event.INSTR_RETIRED, mode_priv),))
            from repro.core import LoopBenchmark

            bench = LoopBenchmark(2_000_000)
            bench.run(machine, 0x8049000)
            return lib.read().pmcs[0] - bench.expected_instructions

        uk_error = run(PrivFilter.ALL)
        user_error = run(PrivFilter.USR)
        assert uk_error > 10_000      # storms hammer u+k counts
        assert abs(user_error) < 500  # user-mode counts stay honest

    def test_interrupt_delivery_terminates(self):
        """Even at absurd rates, delivery converges (no livelock)."""
        from dataclasses import replace

        from repro.kernel.calibration import PERFCTR_BUILD

        extreme = replace(
            PERFCTR_BUILD, name="perfctr-extreme", io_irq_rate_hz=50_000.0
        )
        machine = Machine(processor="CD", kernel=extreme, seed=5)
        machine.core.retire(WorkVector.zero(), cycles=2.4e7)  # 10 ms
        assert machine.controller.io_delivered > 0

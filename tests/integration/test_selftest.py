"""Tests for the end-to-end selftest."""

from repro.cli import main
from repro.selftest import CHECKS, render, run_selftest


class TestSelftest:
    def test_all_checks_pass(self):
        results = run_selftest()
        failures = [r for r in results if not r.passed]
        assert not failures, [f"{r.name}: {r.detail}" for r in failures]

    def test_covers_the_headline_conclusions(self):
        assert len(CHECKS) >= 6

    def test_render(self):
        results = run_selftest()
        text = render(results)
        assert "PASS" in text
        assert f"{len(results)}/{len(results)} checks passed" in text

    def test_crash_reported_not_raised(self):
        from repro import selftest

        def boom():
            raise RuntimeError("injected")

        original = selftest.CHECKS
        try:
            selftest.CHECKS = (boom,)
            results = selftest.run_selftest()
        finally:
            selftest.CHECKS = original
        assert len(results) == 1
        assert not results[0].passed
        assert "injected" in results[0].detail

    def test_cli_exit_code(self, capsys):
        assert main(["selftest"]) == 0
        assert "6/6" in capsys.readouterr().out

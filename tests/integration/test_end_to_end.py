"""End-to-end integration tests across the whole stack."""

import pytest

from repro import (
    LoopBenchmark,
    MeasurementConfig,
    Mode,
    NullBenchmark,
    Pattern,
    run_measurement,
)
from repro.core.config import INFRASTRUCTURES
from repro.core.sweep import SweepSpec, run_sweep
from repro.core.compiler import OptLevel


class TestEveryInfrastructureEveryProcessor:
    @pytest.mark.parametrize("processor", ["PD", "CD", "K8"])
    @pytest.mark.parametrize("infra", INFRASTRUCTURES)
    def test_null_measurement_runs(self, processor, infra):
        config = MeasurementConfig(
            processor=processor, infra=infra, pattern=Pattern.START_READ,
            mode=Mode.USER_KERNEL, seed=5, io_interrupts=False,
        )
        result = run_measurement(config, NullBenchmark())
        assert result.error > 0
        assert result.error < 5000

    @pytest.mark.parametrize("infra", INFRASTRUCTURES)
    def test_loop_ground_truth_recovered_after_correction(self, infra):
        """Subtracting a same-seed null calibration recovers the loop's
        true instruction count exactly in user mode (no interrupts)."""
        def error_of(benchmark):
            config = MeasurementConfig(
                processor="K8", infra=infra, pattern=Pattern.START_READ,
                mode=Mode.USER, seed=9, io_interrupts=False,
            )
            return run_measurement(config, benchmark).error

        assert error_of(LoopBenchmark(100_000)) == error_of(NullBenchmark())


class TestPaperHeadlines:
    """The paper's abstract-level claims, checked end to end."""

    def test_errors_span_orders_of_magnitude(self):
        spec = SweepSpec(
            processors=("CD", "K8"),
            modes=(Mode.USER, Mode.USER_KERNEL),
            opt_levels=(OptLevel.O2,),
            tsc=(True, False),
            repeats=1,
            io_interrupts=False,
        )
        table = run_sweep(spec)
        errors = table.values("error").astype(float)
        assert errors.min() < 50
        assert errors.max() > 1500

    def test_user_mode_error_never_negative_without_interrupts(self):
        spec = SweepSpec(
            processors=("CD",),
            modes=(Mode.USER,),
            opt_levels=(OptLevel.O2,),
            repeats=1,
            io_interrupts=False,
        )
        table = run_sweep(spec)
        assert min(table.values("error")) >= 0

    def test_mode_choice_determines_best_substrate(self):
        def best(mode: Mode, infra: str) -> int:
            config = MeasurementConfig(
                processor="CD", infra=infra,
                pattern=Pattern.READ_READ if infra == "pm" else Pattern.START_READ,
                mode=mode, seed=3, io_interrupts=False,
            )
            return run_measurement(config, NullBenchmark()).error

        assert best(Mode.USER, "pm") < best(Mode.USER, "pc")
        assert best(Mode.USER_KERNEL, "pc") < best(Mode.USER_KERNEL, "pm")


class TestCrossBenchmarkConsistency:
    def test_fixed_cost_independent_of_benchmark(self):
        """The access cost does not depend on what runs in between
        (user mode, interrupt-free)."""
        errors = []
        for bench in (NullBenchmark(), LoopBenchmark(10),
                      LoopBenchmark(10_000)):
            config = MeasurementConfig(
                processor="CD", infra="pm", pattern=Pattern.READ_READ,
                mode=Mode.USER, seed=6, io_interrupts=False,
            )
            errors.append(run_measurement(config, bench).error)
        assert len(set(errors)) == 1

    def test_strided_benchmark_measurable(self):
        from repro import StridedLoadBenchmark

        config = MeasurementConfig(
            processor="K8", infra="pc", pattern=Pattern.START_STOP,
            mode=Mode.USER, seed=2, io_interrupts=False,
        )
        bench = StridedLoadBenchmark(50_000)
        result = run_measurement(config, bench)
        assert result.expected == bench.expected_instructions
        assert 0 <= result.error < 500


class TestSeedIsolation:
    def test_different_seeds_can_change_interrupt_alignment(self):
        measured = {
            run_measurement(
                MeasurementConfig(
                    processor="CD", infra="pc", pattern=Pattern.START_READ,
                    mode=Mode.USER_KERNEL, seed=seed,
                ),
                LoopBenchmark(1_000_000),
            ).error
            for seed in range(12)
        }
        assert len(measured) > 1

"""Golden outputs under injected faults: chaos must not move a byte.

The acceptance bar for the whole resilience layer: ``reproduce`` under
each fault family — workers SIGKILL'd mid-batch, result frames
corrupted on the pipe, disk-cache writes torn, workers stalled — emits
output byte-identical to the committed goldens, because every recovery
path re-executes jobs from their own seeds.  A run SIGKILL'd from the
outside and restarted with ``--resume`` completes to the identical
artifact as well.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.backend import (
    set_default_backend,
    set_default_deadline,
    set_default_jobs,
    warm_available,
)
from repro.chaos import configure_chaos, get_injector, reset_chaos
from repro.cli import main
from repro.exec import set_default_batch

GOLDEN = Path(__file__).parent / "golden"

pytestmark = pytest.mark.skipif(
    not warm_available(), reason="chaos fault points live in the warm backend"
)


@pytest.fixture(autouse=True)
def clean_defaults():
    # A fresh result cache per test: with a warm cache nothing would
    # dispatch and the faults would never be exercised.
    from repro.exec import configure_default_cache

    configure_default_cache(enabled=True)
    yield
    configure_default_cache(enabled=True)
    set_default_jobs(None)
    set_default_batch(None)
    set_default_backend(None)
    set_default_deadline(None)
    reset_chaos()


def reproduce(capsys, artifact, *flags):
    assert main(["reproduce", artifact, *flags]) == 0
    return capsys.readouterr().out


#: Each fault family at a rate that demonstrably fires on these sweeps.
#: frame-corrupt can hit a frame's length field and wedge the reader,
#: so it runs with a deadline — the watchdog turns the wedge into a
#: revive, which costs time, never bytes.
CHAOS_MATRIX = [
    ("worker-kill", ["--chaos", "worker-kill:p=0.2,seed=1"]),
    ("frame-corrupt",
     ["--chaos", "frame-corrupt:p=0.05,seed=2", "--deadline", "5"]),
    ("cache-corruption",
     ["--chaos", "cache-torn:p=0.5,seed=3;cache-enospc:p=0.3,seed=4"]),
    ("slow-worker",
     ["--chaos", "slow-worker:p=0.2,seed=5,stall=0.05"]),
]


def fault_flags(fault, flags, tmp_path):
    """The matrix flags, plus the disk tier the cache faults need."""
    if fault == "cache-corruption":
        return [*flags, "--cache-dir", str(tmp_path / "cache")]
    return list(flags)


class TestChaosGoldenMatrix:
    @pytest.mark.parametrize(
        "fault,flags", CHAOS_MATRIX, ids=[f for f, _ in CHAOS_MATRIX]
    )
    def test_figure4_survives_byte_identically(
        self, capsys, tmp_path, fault, flags
    ):
        golden = (GOLDEN / "figure4.txt").read_text()
        out = reproduce(
            capsys, "figure4", "--jobs", "2", "--backend", "warm",
            *fault_flags(fault, flags, tmp_path),
        )
        assert out == golden
        # The run was not a placebo: at least one fault evaluated.
        counts = get_injector().counts()
        assert sum(evaluated for evaluated, _ in counts.values()) > 0

    @pytest.mark.parametrize(
        "fault,flags", CHAOS_MATRIX, ids=[f for f, _ in CHAOS_MATRIX]
    )
    def test_figure9_survives_byte_identically(
        self, capsys, tmp_path, fault, flags
    ):
        golden = (GOLDEN / "figure9.txt").read_text()
        out = reproduce(
            capsys, "figure9", "--jobs", "2", "--backend", "warm",
            *fault_flags(fault, flags, tmp_path),
        )
        assert out == golden

    def test_worker_kill_actually_fired(self, capsys):
        reproduce(
            capsys, "figure4", "--jobs", "2", "--backend", "warm",
            "--chaos", "worker-kill:p=0.2,seed=1",
        )
        evaluated, fired = get_injector().counts()["worker-kill"]
        assert fired >= 1, f"p=0.2 never fired over {evaluated} dispatches"


class TestChaosReplay:
    def test_fault_pattern_is_a_pure_function_of_the_spec(self, capsys):
        # The replay pin at the CLI level: which evaluations fire is
        # decided by the spec's seeded stream alone.  Replaying the
        # run's evaluation count offline against a fresh injector must
        # land exactly the same number of fires, at the same stream
        # positions.  (The evaluation count itself varies with worker
        # timing — each kill re-dispatches — so it is measured, not
        # pinned.)
        from repro.chaos import ChaosInjector

        spec = "worker-kill:p=0.3,seed=9"
        reproduce(capsys, "figure4", "--jobs", "2", "--backend", "warm",
                  "--chaos", spec)
        evaluated, fired = get_injector().counts()["worker-kill"]
        assert fired >= 1

        replay = ChaosInjector.from_spec(spec)
        refired = sum(
            replay.should_fire("worker-kill") for _ in range(evaluated)
        )
        assert refired == fired


class TestCrashSafeResume:
    def test_sigkilled_run_resumes_to_identical_artifact(self, tmp_path):
        # Run serially (stable timing), SIGKILL mid-sweep, resume, and
        # demand the merged artifact match an uninterrupted run.
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        journal_dir = tmp_path / "journals"
        cmd = [
            sys.executable, "-m", "repro", "reproduce", "figure4",
            "--repeats", "3",
            "--resume", "--journal-dir", str(journal_dir),
        ]
        victim = subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE
        )
        # Kill once the journal holds real progress — a fixed sleep
        # races the sweep's actual duration on a fast or loaded box.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            journals = list(journal_dir.glob("*.journal"))
            if journals and journals[0].stat().st_size > 4096:
                break
            assert victim.poll() is None, "sweep finished before the kill"
            time.sleep(0.02)
        victim.send_signal(signal.SIGKILL)
        victim.wait()

        journals = list(journal_dir.glob("*.journal"))
        assert journals, "the killed run left no journal behind"
        assert journals[0].stat().st_size > 0

        resumed = subprocess.run(
            cmd, env=env, capture_output=True, text=True, timeout=600
        )
        assert resumed.returncode == 0
        restored_lines = [
            line for line in resumed.stderr.splitlines()
            if line.startswith("resume:")
        ]
        assert restored_lines, resumed.stderr
        assert "completed job(s) restored" in restored_lines[0]

        uninterrupted = subprocess.run(
            [sys.executable, "-m", "repro", "reproduce", "figure4",
             "--repeats", "3"],
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert resumed.stdout == uninterrupted.stdout
        # Success discards the sidecar: nothing left to resume.
        assert not list((tmp_path / "journals").glob("*.journal"))

    def test_resume_with_no_journal_is_a_fresh_run(self, capsys, tmp_path):
        golden = (GOLDEN / "figure4.txt").read_text()
        out = reproduce(
            capsys, "figure4",
            "--resume", "--journal-dir", str(tmp_path / "journals"),
        )
        assert out == golden
        assert not list((tmp_path / "journals").glob("*.journal"))

    def test_resume_composes_with_chaos_and_warm_backend(
        self, capsys, tmp_path
    ):
        golden = (GOLDEN / "figure4.txt").read_text()
        out = reproduce(
            capsys, "figure4", "--jobs", "2", "--backend", "warm",
            "--chaos", "worker-kill:p=0.2,seed=1",
            "--resume", "--journal-dir", str(tmp_path / "journals"),
        )
        assert out == golden

"""The chaos injector: replayable by construction.

The contract every chaos golden test leans on: the same spec and seed
produce the same fault pattern, every time, regardless of probability
tuning order or which other points are configured.
"""

import pytest

from repro.chaos import (
    CHAOS_ENV,
    ChaosInjector,
    chaos_param,
    configure_chaos,
    corrupt_bytes,
    get_injector,
    reset_chaos,
    should_fire,
)
from repro.obs.metrics import build_unified_registry


@pytest.fixture(autouse=True)
def clean_chaos():
    reset_chaos()
    yield
    reset_chaos()


def fire_pattern(injector, point, n=200):
    return [injector.should_fire(point) for _ in range(n)]


class TestDeterminism:
    def test_same_spec_same_pattern(self):
        # The replay pin: a chaos run is reproducible from its spec.
        a = ChaosInjector.from_spec("worker-kill:p=0.3,seed=7")
        b = ChaosInjector.from_spec("worker-kill:p=0.3,seed=7")
        assert fire_pattern(a, "worker-kill") == fire_pattern(b, "worker-kill")

    def test_different_seed_different_pattern(self):
        a = ChaosInjector.from_spec("worker-kill:p=0.3,seed=7")
        b = ChaosInjector.from_spec("worker-kill:p=0.3,seed=8")
        assert fire_pattern(a, "worker-kill") != fire_pattern(b, "worker-kill")

    def test_points_draw_from_independent_streams(self):
        # Adding a second fault point must not perturb the first one's
        # draws — otherwise composing faults would change each fault.
        alone = ChaosInjector.from_spec("worker-kill:p=0.3,seed=7")
        paired = ChaosInjector.from_spec(
            "worker-kill:p=0.3,seed=7;cache-torn:p=0.5,seed=1"
        )
        solo = []
        mixed = []
        for _ in range(100):
            solo.append(alone.should_fire("worker-kill"))
            mixed.append(paired.should_fire("worker-kill"))
            paired.should_fire("cache-torn")  # interleave the other point
        assert solo == mixed

    def test_probability_tuning_keeps_stream_position(self):
        # The draw happens even at p=1 and p=0, so where fires *would*
        # land is a function of seed alone, not of p.
        low = ChaosInjector.from_spec("worker-kill:p=0.3,seed=7")
        high = ChaosInjector.from_spec("worker-kill:p=0.8,seed=7")
        low_fires = fire_pattern(low, "worker-kill")
        high_fires = fire_pattern(high, "worker-kill")
        # Every evaluation that fired at p=0.3 also fires at p=0.8.
        assert all(h for l, h in zip(low_fires, high_fires) if l)


class TestFiringPolicy:
    def test_p_zero_never_fires(self):
        injector = ChaosInjector.from_spec("worker-kill:p=0")
        assert not any(fire_pattern(injector, "worker-kill"))

    def test_p_one_always_fires(self):
        injector = ChaosInjector.from_spec("worker-kill:p=1")
        assert all(fire_pattern(injector, "worker-kill"))

    def test_times_budget_caps_fires(self):
        injector = ChaosInjector.from_spec("worker-kill:p=1,times=3")
        assert sum(fire_pattern(injector, "worker-kill")) == 3

    def test_unconfigured_point_never_fires(self):
        injector = ChaosInjector.from_spec("worker-kill:p=1")
        assert not injector.should_fire("cache-torn")

    def test_counts_track_evaluations_and_fires(self):
        injector = ChaosInjector.from_spec("worker-kill:p=1,times=2")
        fire_pattern(injector, "worker-kill", n=5)
        assert injector.counts() == {"worker-kill": (5, 2)}

    def test_param_reads_the_spec(self):
        injector = ChaosInjector.from_spec("slow-worker:stall=0.25")
        assert injector.param("slow-worker", "stall", 5.0) == 0.25
        assert injector.param("worker-kill", "stall", 5.0) == 5.0


class TestCorruptBytes:
    def test_never_returns_input_unchanged(self):
        injector = ChaosInjector.from_spec("frame-corrupt:seed=3")
        data = bytes(range(64))
        for _ in range(50):
            assert injector.corrupt_bytes("frame-corrupt", data) != data

    def test_single_byte_truncates(self):
        injector = ChaosInjector.from_spec("frame-corrupt")
        assert injector.corrupt_bytes("frame-corrupt", b"x") == b""

    def test_deterministic_per_seed(self):
        a = ChaosInjector.from_spec("frame-corrupt:seed=3")
        b = ChaosInjector.from_spec("frame-corrupt:seed=3")
        data = bytes(range(64))
        assert [a.corrupt_bytes("frame-corrupt", data) for _ in range(10)] \
            == [b.corrupt_bytes("frame-corrupt", data) for _ in range(10)]

    def test_unconfigured_point_passes_through(self):
        injector = ChaosInjector.from_spec("worker-kill")
        assert injector.corrupt_bytes("frame-corrupt", b"abc") == b"abc"


class TestProcessWideConfig:
    def test_unconfigured_process_is_inert(self):
        assert not get_injector().active
        assert not should_fire("worker-kill")

    def test_configure_and_clear(self):
        installed = configure_chaos("worker-kill:p=1")
        assert installed is get_injector()
        assert should_fire("worker-kill")
        configure_chaos(None)
        assert not should_fire("worker-kill")

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "slow-worker:p=1,stall=0.5")
        reset_chaos()
        assert get_injector().configured("slow-worker")
        assert chaos_param("slow-worker", "stall", 5.0) == 0.5

    def test_explicit_config_beats_environment(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "slow-worker:p=1")
        configure_chaos("worker-kill:p=1")
        assert get_injector().configured("worker-kill")
        assert not get_injector().configured("slow-worker")

    def test_module_corrupt_bytes_uses_installed_injector(self):
        configure_chaos("frame-corrupt:seed=1")
        assert corrupt_bytes("frame-corrupt", b"abcdef") != b"abcdef"


class TestMetrics:
    def test_fires_counted_into_unified_registry(self):
        registry = build_unified_registry()
        injector = configure_chaos("worker-kill:p=1;cache-torn:p=1")
        injector.should_fire("worker-kill")
        injector.should_fire("worker-kill")
        injector.should_fire("cache-torn")
        text = registry.render()
        assert 'repro_chaos_injected_total{point="worker-kill"} 2' in text
        assert 'repro_chaos_injected_total{point="cache-torn"} 1' in text

    def test_evaluations_that_do_not_fire_are_not_counted(self):
        registry = build_unified_registry()
        injector = configure_chaos("worker-kill:p=0")
        fire_pattern(injector, "worker-kill")
        assert "repro_chaos_injected_total" not in registry.render().replace(
            "# HELP repro_chaos_injected_total", ""
        ).replace("# TYPE repro_chaos_injected_total", "")

"""The chaos spec grammar: parse, validate, render.

A typo in ``--chaos`` must fail loudly with a
:class:`ConfigurationError` — silently injecting nothing would make a
"passing" chaos run meaningless.
"""

import pytest

from repro.chaos import FAULT_POINTS, FaultSpec, parse_chaos_spec
from repro.errors import ConfigurationError


class TestParse:
    def test_bare_point_gets_defaults(self):
        (spec,) = parse_chaos_spec("worker-kill")
        assert spec.point == "worker-kill"
        assert spec.probability == 1.0
        assert spec.seed == 0
        assert spec.times is None
        assert spec.params == ()

    def test_full_clause(self):
        (spec,) = parse_chaos_spec("worker-kill:p=0.05,seed=7,times=3")
        assert spec.probability == 0.05
        assert spec.seed == 7
        assert spec.times == 3

    def test_multiple_clauses(self):
        specs = parse_chaos_spec("worker-kill:p=0.5;cache-torn:seed=2")
        assert [s.point for s in specs] == ["worker-kill", "cache-torn"]
        assert specs[1].seed == 2

    def test_whitespace_and_case_tolerated(self):
        (spec,) = parse_chaos_spec("  Worker-Kill : p = 0.5 , seed = 1 ")
        assert spec.point == "worker-kill"
        assert spec.probability == 0.5
        assert spec.seed == 1

    def test_empty_clauses_between_semicolons_skipped(self):
        specs = parse_chaos_spec("worker-kill;;cache-torn;")
        assert [s.point for s in specs] == ["worker-kill", "cache-torn"]

    def test_point_specific_stall_parameter(self):
        (spec,) = parse_chaos_spec("slow-worker:p=1,stall=2.5")
        assert spec.param("stall", 5.0) == 2.5
        assert spec.param("unset", 9.0) == 9.0

    def test_every_registered_point_parses_bare(self):
        for point in FAULT_POINTS:
            (spec,) = parse_chaos_spec(point)
            assert spec.point == point


class TestErrors:
    @pytest.mark.parametrize("text", [
        "bogus-point",
        "bogus-point:p=1",
        "worker-kill;bogus-point",
    ])
    def test_unknown_point(self, text):
        with pytest.raises(ConfigurationError, match="unknown chaos fault"):
            parse_chaos_spec(text)

    def test_stall_only_allowed_on_slow_worker(self):
        with pytest.raises(ConfigurationError, match="unknown chaos param"):
            parse_chaos_spec("worker-kill:stall=2")

    @pytest.mark.parametrize("text", [
        "worker-kill:p",
        "worker-kill:p=",
        "worker-kill:=0.5",
        "worker-kill:0.5",
    ])
    def test_malformed_parameter(self, text):
        with pytest.raises(ConfigurationError, match="key=value"):
            parse_chaos_spec(text)

    @pytest.mark.parametrize("text", [
        "worker-kill:p=maybe",
        "worker-kill:seed=x",
        "worker-kill:times=1.5",
    ])
    def test_non_numeric_value(self, text):
        with pytest.raises(ConfigurationError, match="not a number"):
            parse_chaos_spec(text)

    @pytest.mark.parametrize("p", ["-0.1", "1.1"])
    def test_probability_out_of_range(self, p):
        with pytest.raises(ConfigurationError, match="must be in"):
            parse_chaos_spec(f"worker-kill:p={p}")

    def test_times_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="times must be >= 1"):
            parse_chaos_spec("worker-kill:times=0")

    def test_duplicate_point_rejected(self):
        # Two RNG streams for one point would make replay ambiguous.
        with pytest.raises(ConfigurationError, match="configured twice"):
            parse_chaos_spec("worker-kill:p=0.5;worker-kill:p=0.9")

    @pytest.mark.parametrize("text", ["", "   ", ";;"])
    def test_spec_naming_no_point_rejected(self, text):
        with pytest.raises(ConfigurationError, match="no fault point"):
            parse_chaos_spec(text)


class TestRender:
    def test_render_round_trips(self):
        specs = parse_chaos_spec(
            "worker-kill:p=0.05,seed=7,times=3;slow-worker:stall=2.5"
        )
        rendered = ";".join(spec.render() for spec in specs)
        assert parse_chaos_spec(rendered) == specs

    def test_direct_construction_validates(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(point="nope")
        with pytest.raises(ConfigurationError):
            FaultSpec(point="worker-kill", probability=2.0)

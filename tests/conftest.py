"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.cpu.events import Event, PrivFilter
from repro.kernel.system import Machine


@pytest.fixture
def quiet_perfctr_machine() -> Machine:
    """A CD/perfctr machine with no I/O interrupts (deterministic)."""
    return Machine(
        processor="CD", kernel="perfctr", seed=1234, io_interrupts=False
    )


@pytest.fixture
def quiet_perfmon_machine() -> Machine:
    """A CD/perfmon machine with no I/O interrupts (deterministic)."""
    return Machine(
        processor="CD", kernel="perfmon", seed=1234, io_interrupts=False
    )


@pytest.fixture
def instr_all() -> tuple[tuple[Event, PrivFilter], ...]:
    """One counter: retired instructions, user+kernel."""
    return ((Event.INSTR_RETIRED, PrivFilter.ALL),)


@pytest.fixture
def instr_user() -> tuple[tuple[Event, PrivFilter], ...]:
    """One counter: retired instructions, user only."""
    return ((Event.INSTR_RETIRED, PrivFilter.USR),)

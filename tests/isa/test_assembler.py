"""Unit tests for repro.isa.assembler — the Figure 3 loop parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssemblerError
from repro.isa.assembler import (
    PAPER_LOOP_SOURCE,
    assemble_loop,
    parse_att_listing,
)
from repro.isa.instructions import Instr, InstrClass


class TestParser:
    def test_parses_paper_loop(self):
        items = parse_att_listing(PAPER_LOOP_SOURCE.replace("$MAX", "$5"))
        instrs = [i for i in items if isinstance(i, Instr)]
        labels = [i for i in items if isinstance(i, str)]
        assert [i.mnemonic for i in instrs] == ["movl", "addl", "cmpl", "jne"]
        assert labels == [".loop"]

    def test_comments_and_blanks_ignored(self):
        items = parse_att_listing("# comment\n\n  nop  # trailing\n")
        assert len(items) == 1
        assert items[0].iclass is InstrClass.NOP

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="frobnicate"):
            parse_att_listing("frobnicate %eax")

    def test_memory_operand_classification(self):
        load, store = parse_att_listing(
            "movl (%esi), %eax\nmovl %eax, (%edi)"
        )
        assert load.iclass is InstrClass.LOAD
        assert store.iclass is InstrClass.STORE

    def test_operands_preserved(self):
        (instr,) = parse_att_listing("addl $1, %eax")
        assert instr.operands == ("$1", "%eax")


class TestAssembleLoop:
    def test_paper_ground_truth_model(self):
        # The paper's model: instructions = 1 + 3 * MAX (Section 3.4).
        for max_iters in (1, 10, 1_000, 1_000_000):
            loop = assemble_loop(max_iters=max_iters)
            assert loop.expected_instructions == 1 + 3 * max_iters

    @given(n=st.integers(1, 10_000_000))
    def test_model_holds_for_any_iteration_count(self, n):
        assert assemble_loop(max_iters=n).expected_instructions == 1 + 3 * n

    def test_header_and_body_split(self):
        loop = assemble_loop(max_iters=7)
        assert loop.header.work.instructions == 1   # movl $0, %eax
        assert loop.body.work.instructions == 3     # addl, cmpl, jne
        assert loop.trips == 7

    def test_back_edge_is_taken(self):
        loop = assemble_loop(max_iters=3)
        assert loop.body.work.taken_branches == 1

    def test_macro_substituted(self):
        loop = assemble_loop(max_iters=42)
        assert loop.trips == 42

    def test_zero_iterations_rejected(self):
        with pytest.raises(AssemblerError, match="iteration"):
            assemble_loop(max_iters=0)

    def test_requires_single_label(self):
        with pytest.raises(AssemblerError, match="label"):
            assemble_loop("nop\naddl $1, %eax\n", max_iters=1)

    def test_requires_terminating_branch(self):
        source = ".loop:\naddl $1, %eax\n"
        with pytest.raises(AssemblerError, match="branch"):
            assemble_loop(source, max_iters=1)

    def test_branch_must_target_the_label(self):
        source = ".loop:\naddl $1, %eax\njne .elsewhere\n"
        with pytest.raises(AssemblerError, match="target"):
            assemble_loop(source, max_iters=1)

    def test_custom_loop_shape(self):
        source = """
            movl $0, %ecx
            movl $0, %eax
        .top:
            addl $2, %eax
            subl $1, %ecx
            cmpl $N, %eax
            jne .top
        """
        loop = assemble_loop(source, max_iters=10, macro="N")
        assert loop.header.work.instructions == 2
        assert loop.body.work.instructions == 4
        assert loop.expected_instructions == 2 + 4 * 10

    def test_to_loop_round_trip(self):
        assembled = assemble_loop(max_iters=100)
        loop = assembled.to_loop()
        assert loop.total_work() == assembled.expected_work()

"""Unit tests for repro.isa.builder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.builder import CodeBuilder, user_code_chunk


class TestCodeBuilder:
    def test_alu_counts(self):
        assert CodeBuilder().alu(5).build().work.instructions == 5

    def test_mixed_path(self):
        built = (
            CodeBuilder("path").alu(4).load(2).store(1).branch(2, taken=1).build()
        )
        work = built.work
        assert work.instructions == 9
        assert work.loads == 2
        assert work.stores == 1
        assert work.branches == 2
        assert work.taken_branches == 1
        assert built.label == "path"

    def test_call_and_ret_touch_stack(self):
        work = CodeBuilder().call().ret().build().work
        assert work.stores == 1  # call pushes
        assert work.loads == 1   # ret pops
        assert work.taken_branches == 2

    def test_prologue_epilogue(self):
        work = CodeBuilder().fn_prologue().fn_epilogue().build().work
        assert work.instructions == 5

    def test_branch_taken_validation(self):
        with pytest.raises(ValueError, match="taken"):
            CodeBuilder().branch(1, taken=2)

    def test_size_accumulates(self):
        assert CodeBuilder().alu(10).build().size_bytes == 30


class TestUserCodeChunk:
    @given(n=st.integers(0, 5000))
    def test_exact_instruction_total(self, n):
        # The accuracy study counts instructions; the helper must be exact.
        assert user_code_chunk(n, "x").work.instructions == n

    def test_has_memory_mix(self):
        work = user_code_chunk(80, "x").work
        assert work.loads == 10
        assert work.stores == 10

"""Unit tests for repro.isa.instructions."""

import pytest

from repro.isa.instructions import (
    Instr,
    InstrClass,
    PRIVILEGED_CLASSES,
    SERIALIZING_CLASSES,
)


class TestPrivilege:
    @pytest.mark.parametrize("iclass", sorted(PRIVILEGED_CLASSES, key=lambda c: c.value))
    def test_privileged_classes(self, iclass):
        assert Instr("x", iclass).privileged

    def test_rdpmc_not_statically_privileged(self):
        # RDPMC's legality depends on CR4.PCE, enforced by the core.
        assert not Instr("rdpmc", InstrClass.RDPMC).privileged

    def test_alu_unprivileged(self):
        assert not Instr("addl", InstrClass.ALU).privileged


class TestWork:
    def test_plain_alu(self):
        work = Instr("addl", InstrClass.ALU).work()
        assert work.instructions == 1
        assert work.branches == 0

    def test_untaken_branch(self):
        work = Instr("jne", InstrClass.BRANCH).work()
        assert work.branches == 1
        assert work.taken_branches == 0

    def test_taken_branch(self):
        work = Instr("jne", InstrClass.BRANCH, taken=True).work()
        assert work.taken_branches == 1

    def test_call_pushes(self):
        work = Instr("call", InstrClass.CALL).work()
        assert work.stores == 1
        assert work.taken_branches == 1

    def test_ret_pops(self):
        work = Instr("ret", InstrClass.RET).work()
        assert work.loads == 1

    def test_load_store(self):
        assert Instr("movl", InstrClass.LOAD).work().loads == 1
        assert Instr("movl", InstrClass.STORE).work().stores == 1

    @pytest.mark.parametrize("iclass", sorted(SERIALIZING_CLASSES, key=lambda c: c.value))
    def test_serializing_work(self, iclass):
        assert Instr("x", iclass).work().serializing == 1


class TestEncoding:
    def test_default_sizes_positive(self):
        for iclass in InstrClass:
            assert Instr("x", iclass).size > 0

    def test_explicit_size_kept(self):
        assert Instr("movl", InstrClass.MOV, size=7).size == 7

    def test_instr_is_frozen(self):
        instr = Instr("addl", InstrClass.ALU)
        with pytest.raises(AttributeError):
            instr.mnemonic = "subl"

"""Unit tests for repro.isa.work."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.work import WorkVector


def work_vectors() -> st.SearchStrategy[WorkVector]:
    """Strategy producing valid work vectors."""
    return st.builds(
        lambda extra, branches, taken, loads, stores, ser: WorkVector(
            instructions=extra + branches + ser,
            branches=branches,
            taken_branches=taken if taken <= branches else branches,
            loads=loads,
            stores=stores,
            serializing=ser,
        ),
        extra=st.integers(0, 10_000),
        branches=st.integers(0, 1_000),
        taken=st.integers(0, 1_000),
        loads=st.integers(0, 1_000),
        stores=st.integers(0, 1_000),
        ser=st.integers(0, 100),
    )


class TestConstruction:
    def test_zero_is_empty(self):
        assert WorkVector.zero().is_zero
        assert WorkVector.zero().instructions == 0

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError, match="instructions"):
            WorkVector(instructions=-1)

    def test_taken_cannot_exceed_branches(self):
        with pytest.raises(ValueError, match="taken_branches"):
            WorkVector(instructions=5, branches=1, taken_branches=2)

    def test_instructions_must_cover_branches(self):
        with pytest.raises(ValueError, match="cover"):
            WorkVector(instructions=1, branches=2)

    @pytest.mark.parametrize(
        "kind,field",
        [
            ("alu", None),
            ("branch", "branches"),
            ("taken_branch", "taken_branches"),
            ("load", "loads"),
            ("store", "stores"),
            ("serializing", "serializing"),
        ],
    )
    def test_single(self, kind, field):
        work = WorkVector.single(kind)
        assert work.instructions == 1
        if field is not None:
            assert getattr(work, field) == 1

    def test_single_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown instruction kind"):
            WorkVector.single("bogus")


class TestAlgebra:
    def test_addition_is_fieldwise(self):
        a = WorkVector(instructions=10, branches=2, taken_branches=1, loads=3)
        b = WorkVector(instructions=5, branches=1, taken_branches=1, stores=2)
        total = a + b
        assert total.instructions == 15
        assert total.branches == 3
        assert total.taken_branches == 2
        assert total.loads == 3
        assert total.stores == 2

    def test_multiplication_repeats(self):
        body = WorkVector(instructions=3, branches=1, taken_branches=1)
        assert (body * 4).instructions == 12
        assert (4 * body).branches == 4

    def test_multiply_by_zero(self):
        assert (WorkVector(instructions=7) * 0).is_zero

    def test_negative_repeat_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            WorkVector(instructions=1) * (-1)

    @given(a=work_vectors(), b=work_vectors())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(a=work_vectors(), b=work_vectors(), c=work_vectors())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(work=work_vectors(), n=st.integers(0, 50))
    def test_repeat_equals_repeated_addition(self, work, n):
        total = WorkVector.zero()
        for _ in range(n):
            total = total + work
        assert total == work * n

    @given(work=work_vectors())
    def test_zero_is_identity(self, work):
        assert work + WorkVector.zero() == work

"""Unit tests for repro.isa.layout."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.isa.layout import DEFAULT_TEXT_BASE, CodeLayout, CodeObject


class TestPlacement:
    def test_first_object_at_base(self):
        layout = CodeLayout()
        assert layout.place(CodeObject("a", 100)) == DEFAULT_TEXT_BASE

    def test_sequential_alignment(self):
        layout = CodeLayout(function_align=16)
        layout.place(CodeObject("a", 10))
        address = layout.place(CodeObject("b", 10))
        assert address == DEFAULT_TEXT_BASE + 16
        assert address % 16 == 0

    def test_size_changes_shift_later_symbols(self):
        # The mechanism behind the paper's Section 6.
        small, big = CodeLayout(), CodeLayout()
        small.place(CodeObject("harness", 100))
        big.place(CodeObject("harness", 260))
        a = small.place(CodeObject("bench", 10))
        b = big.place(CodeObject("bench", 10))
        assert a != b

    def test_duplicate_name_rejected(self):
        layout = CodeLayout()
        layout.place(CodeObject("a", 4))
        with pytest.raises(ConfigurationError, match="duplicate"):
            layout.place(CodeObject("a", 4))

    def test_address_of_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            CodeLayout().address_of("ghost")

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError, match="negative"):
            CodeObject("bad", -1)

    def test_bad_alignment_rejected(self):
        with pytest.raises(ConfigurationError, match="alignment"):
            CodeLayout(function_align=0)

    @given(sizes=st.lists(st.integers(0, 4096), min_size=1, max_size=20),
           align=st.sampled_from([1, 2, 4, 8, 16, 32]))
    def test_no_overlap_and_aligned(self, sizes, align):
        layout = CodeLayout(function_align=align)
        placed = []
        for index, size in enumerate(sizes):
            address = layout.place(CodeObject(f"o{index}", size))
            assert address % align == 0
            placed.append((address, size))
        for (a1, s1), (a2, _s2) in zip(placed, placed[1:]):
            assert a2 >= a1 + s1

    def test_end_address(self):
        layout = CodeLayout(function_align=1)
        layout.place(CodeObject("a", 10))
        assert layout.end_address == DEFAULT_TEXT_BASE + 10

"""Unit tests for repro.isa.block."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.block import Block, Chunk, Loop, Program
from repro.isa.instructions import Instr, InstrClass
from repro.isa.work import WorkVector


def chunk(n: int, label: str = "c") -> Chunk:
    return Chunk(WorkVector(instructions=n), label=label)


class TestChunk:
    def test_default_size_estimate(self):
        assert chunk(10).size_bytes == 35  # ~3.5 B/instr

    def test_of_instructions_sums(self):
        instrs = [
            Instr("movl", InstrClass.MOV),
            Instr("addl", InstrClass.ALU),
            Instr("jne", InstrClass.BRANCH, taken=True),
        ]
        built = Chunk.of_instructions(instrs, label="loop-ish")
        assert built.work.instructions == 3
        assert built.work.taken_branches == 1
        assert built.size_bytes == sum(i.size for i in instrs)


class TestLoop:
    def test_total_work_closed_form(self):
        loop = Loop(body=chunk(3), trips=1000, header=chunk(1))
        assert loop.total_work().instructions == 1 + 3 * 1000

    def test_zero_trips(self):
        loop = Loop(body=chunk(3), trips=0, header=chunk(1))
        assert loop.total_work().instructions == 1

    def test_negative_trips_rejected(self):
        with pytest.raises(ValueError, match="trips"):
            Loop(body=chunk(3), trips=-1)

    def test_size_not_unrolled(self):
        small = Loop(body=chunk(3), trips=10)
        big = Loop(body=chunk(3), trips=10_000_000)
        assert small.size_bytes == big.size_bytes

    @given(trips=st.integers(0, 10_000), body_n=st.integers(1, 50),
           header_n=st.integers(0, 10))
    def test_total_matches_manual_sum(self, trips, body_n, header_n):
        loop = Loop(body=chunk(body_n), trips=trips, header=chunk(header_n))
        assert (
            loop.total_work().instructions == header_n + body_n * trips
        )


class TestBlock:
    def test_concatenation(self):
        a = Block(items=(chunk(1),))
        b = Block(items=(chunk(2),))
        assert (a + b).total_work().instructions == 3
        assert len(a + b) == 2

    def test_append_returns_new(self):
        empty = Block()
        one = empty.append(chunk(5))
        assert len(empty) == 0
        assert len(one) == 1

    def test_total_work_includes_loops(self):
        block = Block(items=(chunk(2), Loop(body=chunk(3), trips=4)))
        assert block.total_work().instructions == 2 + 12

    def test_size_bytes_sums_items(self):
        block = Block(items=(chunk(2), chunk(4)))
        assert block.size_bytes == chunk(2).size_bytes + chunk(4).size_bytes


class TestProgram:
    def test_program_delegates(self):
        program = Program("p", Block(items=(chunk(7),)), base_address=0x1000)
        assert program.total_work().instructions == 7
        assert program.size_bytes == chunk(7).size_bytes

"""Per-job deadlines and the slow-job watchdog in the warm backend.

A wedged worker — stalled by chaos, a runaway job, or a kernel hiccup
— must not hang ``collect()`` forever.  With a slow-job threshold set
the coordinator warns (log + counter); with a deadline set it revives
the worker and re-dispatches the batch, and because every job carries
its complete seed the recomputed results are byte-identical.
"""

import time

import pytest

from repro.backend import GLOBAL_STATS, make_backend, warm_available
from repro.backend.knobs import (
    resolve_deadline,
    resolve_slow_threshold,
    set_default_deadline,
    set_default_slow_threshold,
)
from repro.chaos import configure_chaos, reset_chaos
from repro.errors import ConfigurationError
from repro.obs.metrics import build_unified_registry

from tests.backend.test_warm_robustness import small_plan

pytestmark = pytest.mark.skipif(
    not warm_available(), reason="warm backend needs the fork start method"
)


@pytest.fixture(autouse=True)
def clean_watchdog_state():
    yield
    set_default_deadline(None)
    set_default_slow_threshold(None)
    reset_chaos()


class TestKnobs:
    def test_deadline_chain(self, monkeypatch):
        assert resolve_deadline() is None
        set_default_deadline(1.5)
        assert resolve_deadline() == 1.5
        assert resolve_deadline(0.5) == 0.5  # explicit beats default
        set_default_deadline(None)
        monkeypatch.setenv("REPRO_DEADLINE", "2.5")
        assert resolve_deadline() == 2.5

    def test_slow_threshold_chain(self, monkeypatch):
        assert resolve_slow_threshold() is None
        set_default_slow_threshold(3.0)
        assert resolve_slow_threshold() == 3.0
        set_default_slow_threshold(None)
        monkeypatch.setenv("REPRO_SLOW_JOB", "4.0")
        assert resolve_slow_threshold() == 4.0

    @pytest.mark.parametrize("value", [0, -1.0])
    def test_non_positive_rejected(self, value):
        with pytest.raises(ConfigurationError, match="> 0"):
            set_default_deadline(value)
        with pytest.raises(ConfigurationError, match="> 0"):
            set_default_slow_threshold(value)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "soon")
        with pytest.raises(ConfigurationError, match="REPRO_DEADLINE"):
            resolve_deadline()


class TestDeadlineRevival:
    def test_stalled_worker_is_revived_and_results_identical(self):
        # slow-worker chaos wedges the first batch a worker picks up
        # for far longer than the deadline; the watchdog must revive
        # the worker, re-dispatch, and the table must not move a byte.
        plan = small_plan(base_seed=20)
        jobs = list(plan)
        baseline = [job.execute() for job in jobs]

        configure_chaos("slow-worker:p=1,times=1,stall=30")
        set_default_deadline(0.3)
        backend = make_backend("warm", workers=2)
        revivals_before = GLOBAL_STATS.stall_revivals
        try:
            outcome = backend.execute(jobs, list(range(len(jobs))))
        finally:
            backend.shutdown(grace=2.0)

        assert outcome.results == baseline
        assert backend.stats.stall_revivals >= 1
        assert GLOBAL_STATS.stall_revivals > revivals_before

    def test_revivals_surface_in_the_metrics_registry(self):
        registry = build_unified_registry()
        plan = small_plan(base_seed=21)
        jobs = list(plan)

        configure_chaos("slow-worker:p=1,times=1,stall=30")
        set_default_deadline(0.3)
        backend = make_backend("warm", workers=2)
        try:
            backend.execute(jobs, list(range(len(jobs))))
        finally:
            backend.shutdown(grace=2.0)

        for line in registry.render().splitlines():
            if line.startswith("repro_backend_stall_revivals"):
                assert int(line.split()[-1]) >= 1
                break
        else:
            pytest.fail("repro_backend_stall_revivals gauge not rendered")

    def test_premature_deadline_only_costs_time_never_bytes(self):
        # A deadline far too tight for honest work forces spurious
        # revivals; correctness must survive them (the budget scales
        # with batch size, so forward progress is still made).
        plan = small_plan(base_seed=22)
        jobs = list(plan)
        baseline = [job.execute() for job in jobs]

        set_default_deadline(0.001)
        backend = make_backend("warm", workers=2)
        try:
            outcome = backend.execute(jobs, list(range(len(jobs))))
        finally:
            backend.shutdown(grace=2.0)
        assert outcome.results == baseline


class TestSlowJobWarning:
    def test_slow_batch_warns_once_and_completes(self, caplog):
        registry = build_unified_registry()
        counter = registry.get("repro_slow_job_warnings_total")
        before = counter.value

        plan = small_plan(base_seed=23)
        jobs = list(plan)
        baseline = [job.execute() for job in jobs]

        configure_chaos("slow-worker:p=1,times=1,stall=0.5")
        set_default_slow_threshold(0.1)  # warn only: no deadline set
        backend = make_backend("warm", workers=2)
        try:
            with caplog.at_level("WARNING", logger="repro.backend.warm"):
                outcome = backend.execute(jobs, list(range(len(jobs))))
        finally:
            backend.shutdown(grace=2.0)

        assert outcome.results == baseline
        assert counter.value > before
        assert any("slow" in record.message for record in caplog.records)
        # Warn-only mode never revives anything.
        assert backend.stats.stall_revivals == 0


class _WedgeForever:
    """Picklable job that outlives any test timeout."""

    def execute(self):
        time.sleep(600.0)
        return "never"

"""Backend selection: one resolution chain, loud rejection, shared fleets.

``--backend`` resolves exactly like every other execution knob —
explicit argument > process default > environment > built-in fallback —
and the fallback is worker-count aware so plain ``--jobs 4`` lands on
the warm fleet without further flags.
"""

import pytest

from repro.backend import (
    BACKEND_NAMES,
    get_backend,
    make_backend,
    resolve_backend_name,
    set_default_backend,
    shared_backends,
    shutdown_backends,
    warm_available,
)
from repro.backend.inline import InlineBackend
from repro.backend.pool import PoolBackend
from repro.backend.warm import WarmBackend
from repro.errors import ConfigurationError
from repro.exec import set_default_jobs

@pytest.fixture(autouse=True)
def clean_backend_state(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    set_default_backend(None)
    set_default_jobs(None)
    yield
    set_default_backend(None)
    set_default_jobs(None)
    shutdown_backends(grace=1.0)


class TestResolutionChain:
    def test_explicit_wins_over_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pool")
        set_default_backend("warm")
        assert resolve_backend_name("inline") == "inline"

    def test_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "warm")
        set_default_backend("pool")
        assert resolve_backend_name() == "pool"

    def test_env_beats_jobs_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pool")
        assert resolve_backend_name(jobs=4) == "pool"

    def test_single_job_falls_back_to_inline(self):
        assert resolve_backend_name() == "inline"
        assert resolve_backend_name(jobs=1) == "inline"

    def test_multi_job_falls_back_to_warm(self):
        expected = "warm" if warm_available() else "pool"
        assert resolve_backend_name(jobs=4) == expected

    def test_names_normalised(self):
        assert resolve_backend_name("  WARM ") == "warm"

    @pytest.mark.parametrize("bogus", ["bogus", "threads", ""])
    def test_unknown_explicit_name_rejected(self, bogus):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend_name(bogus)

    def test_rejection_lists_the_known_names(self):
        with pytest.raises(
            ConfigurationError,
            match=r"unknown backend 'bogus'; known: inline, pool, warm",
        ):
            resolve_backend_name("bogus")

    def test_unknown_env_name_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "turbo")
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend_name()

    def test_set_default_validates_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            set_default_backend("bogus")


class TestInstances:
    def test_make_backend_returns_the_registered_classes(self):
        assert BACKEND_NAMES == ("inline", "pool", "warm")
        assert isinstance(make_backend("inline"), InlineBackend)
        assert isinstance(make_backend("pool", workers=2), PoolBackend)
        if warm_available():
            warm = make_backend("warm", workers=2)
            assert isinstance(warm, WarmBackend)
            warm.shutdown(grace=1.0)

    def test_get_backend_shares_by_name_and_workers(self):
        a = get_backend("pool", jobs=2)
        b = get_backend("pool", jobs=2)
        c = get_backend("pool", jobs=3)
        assert a is b
        assert a is not c
        assert a in shared_backends() and c in shared_backends()

    def test_inline_shares_one_instance_regardless_of_jobs(self):
        # Worker count is meaningless in-process; don't fragment the key.
        assert get_backend("inline", jobs=4) is get_backend("inline", jobs=1)

    def test_shutdown_backends_empties_the_registry(self):
        get_backend("pool", jobs=2)
        assert shared_backends()
        shutdown_backends(grace=1.0)
        assert shared_backends() == []

"""Warm-fleet failure handling: worker death must not move a byte.

A worker that dies mid-batch (OOM killer, crash) is detected by pipe
EOF, respawned with its templates re-registered, and its in-flight
batches re-dispatched.  The results must be byte-identical to an
undisturbed run — every job re-executes from its own seed — and the
``repro_backend_worker_restarts`` accounting must record the incident.
"""

import os
import signal
import threading
import time

import pytest

from repro.backend import GLOBAL_STATS, make_backend, warm_available
from repro.backend.warm import WarmBackend, WorkerFailure
from repro.core.config import Mode, Pattern
from repro.core.sweep import SweepSpec
from repro.exec import BackendExecutor
from repro.obs.metrics import build_unified_registry

pytestmark = pytest.mark.skipif(
    not warm_available(), reason="warm backend needs the fork start method"
)


def small_plan(base_seed: int = 0):
    return SweepSpec(
        processors=("CD",),
        infras=("pm", "pc"),
        patterns=(Pattern.START_READ, Pattern.READ_READ),
        modes=(Mode.USER, Mode.USER_KERNEL),
        repeats=2,
        base_seed=base_seed,
        io_interrupts=False,
    ).plan()


def collect_all(backend, submitted):
    """Collect every submitted batch, reassembled in submission order."""
    by_batch = {}
    while len(by_batch) < len(submitted):
        done = backend.collect()
        by_batch[done.batch_id] = done.results
    return [result for bid in submitted for result in by_batch[bid]]


class TestWorkerDeath:
    def test_killed_worker_is_replaced_and_results_are_identical(self):
        plan = small_plan()
        jobs = list(plan)
        baseline = [job.execute() for job in jobs]

        backend = make_backend("warm", workers=2)
        restarts_before = GLOBAL_STATS.worker_restarts
        try:
            backend.prepare(jobs)
            submitted = []
            for start in range(0, len(jobs), 4):
                chunk = jobs[start:start + 4]
                submitted.append(
                    backend.submit(chunk, list(range(start, start + len(chunk))))
                )
            # SIGKILL one worker while its batches are in flight: the
            # coordinator must see EOF, respawn, and re-dispatch.
            os.kill(backend.worker_pids[0], signal.SIGKILL)
            results = collect_all(backend, submitted)
        finally:
            backend.shutdown(grace=2.0)

        assert results == baseline
        assert backend.stats.worker_restarts >= 1
        assert GLOBAL_STATS.worker_restarts > restarts_before

    def test_restart_shows_up_in_the_metrics_registry(self):
        registry = build_unified_registry()
        plan = small_plan(base_seed=1)
        jobs = list(plan)

        backend = make_backend("warm", workers=2)
        try:
            backend.prepare(jobs)
            submitted = [backend.submit(jobs, list(range(len(jobs))))]
            os.kill(backend.worker_pids[-1], signal.SIGKILL)
            collect_all(backend, submitted)
        finally:
            backend.shutdown(grace=2.0)

        rendered = registry.render()
        for line in rendered.splitlines():
            if line.startswith("repro_backend_worker_restarts"):
                assert int(line.split()[-1]) >= 1
                break
        else:
            pytest.fail("repro_backend_worker_restarts gauge not rendered")

    def test_executor_run_survives_worker_death(self):
        # End to end through the executor facade: a timer thread kills
        # a worker while run() is dispatching; whether the kill lands
        # mid-batch or between plans, the table must match inline.
        plan = small_plan(base_seed=2)
        inline = BackendExecutor(make_backend("inline"), cache=None).run(plan)

        backend = make_backend("warm", workers=2)

        def kill_soon():
            time.sleep(0.05)
            pids = backend.worker_pids
            if pids:
                os.kill(pids[0], signal.SIGKILL)

        killer = threading.Thread(target=kill_soon)
        try:
            killer.start()
            table = BackendExecutor(backend, cache=None).run(plan)
        finally:
            killer.join()
            backend.shutdown(grace=2.0)
        assert table.to_csv() == inline.to_csv()


class _ExplodingJob:
    """Picklable job that always fails in the worker."""

    def execute(self):
        raise ValueError("boom")


class _SleepyJob:
    """Picklable job that wedges its worker for a long time."""

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds

    def execute(self):
        time.sleep(self.seconds)
        return "slept"


class TestSharedFleetIsolation:
    def test_failed_run_does_not_poison_the_next(self):
        # A WorkerFailure unwinds execute() mid-flight; the abandoned
        # batches, stale failures, and late-arriving frames must not
        # leak into the next run on the same (shared) fleet.
        plan = small_plan(base_seed=5)
        jobs = list(plan)
        baseline = [job.execute() for job in jobs]

        backend = make_backend("warm", workers=2)
        try:
            with pytest.raises(WorkerFailure):
                backend.execute([_ExplodingJob() for _ in range(8)],
                                list(range(8)))
            assert backend.inflight == 0
            outcome = backend.execute(jobs, list(range(len(jobs))))
        finally:
            backend.shutdown(grace=5.0)
        assert outcome.results == baseline

    def test_concurrent_executes_serialize_without_mixing(self):
        # serve --workers N drives the shared fleet from several
        # threads at once; runs must queue on the backend's lock, not
        # interleave pipes and steal each other's batches.
        plans = [small_plan(base_seed=10 + i) for i in range(3)]
        baselines = [[job.execute() for job in plan] for plan in plans]

        backend = make_backend("warm", workers=2)
        outcomes = [None] * len(plans)
        errors = []

        def run(slot):
            jobs = list(plans[slot])
            try:
                outcomes[slot] = backend.execute(
                    jobs, list(range(len(jobs)))
                )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(slot,))
            for slot in range(len(plans))
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
        finally:
            backend.shutdown(grace=5.0)
        assert not errors
        for outcome, baseline in zip(outcomes, baselines):
            assert outcome is not None
            assert outcome.results == baseline


class TestGracefulShutdown:
    def test_shutdown_grace_bounds_a_wedged_worker(self):
        # A worker stuck on a pathological job must not hold shutdown
        # (which runs atexit) hostage: the drain gives up at the grace
        # deadline and the worker is terminated.
        backend = make_backend("warm", workers=2)
        backend.submit([_SleepyJob(120.0)], [0])
        start = time.monotonic()
        drained = backend.shutdown(grace=0.5)
        elapsed = time.monotonic() - start
        assert drained == []
        assert elapsed < 10.0
        assert backend.worker_pids == []

    def test_shutdown_drains_in_flight_batches(self):
        plan = small_plan(base_seed=3)
        jobs = list(plan)
        backend = make_backend("warm", workers=2)
        backend.prepare(jobs)
        submitted = []
        for start in range(0, len(jobs), 8):
            chunk = jobs[start:start + 8]
            submitted.append(
                backend.submit(chunk, list(range(start, start + len(chunk))))
            )
        drained = backend.shutdown(grace=10.0)
        assert sorted(done.batch_id for done in drained) == sorted(submitted)
        assert sum(done.jobs for done in drained) == len(jobs)
        assert backend.worker_pids == []

    def test_workers_exit_after_shutdown(self):
        backend = make_backend("warm", workers=2)
        backend.prepare(list(small_plan(base_seed=4)))
        procs = [worker.proc for worker in backend._workers]
        assert procs and all(proc.is_alive() for proc in procs)
        backend.shutdown(grace=5.0)
        deadline = time.monotonic() + 5.0
        while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not any(proc.is_alive() for proc in procs)

    def test_shutdown_is_idempotent_and_submit_after_is_an_error(self):
        backend = make_backend("warm", workers=2)
        backend.shutdown(grace=1.0)
        assert backend.shutdown(grace=1.0) == []
        with pytest.raises(RuntimeError, match="shut down"):
            backend.submit([], [])

    def test_unavailable_platforms_refuse_loudly(self, monkeypatch):
        from repro.backend import warm as warm_module
        from repro.errors import ConfigurationError

        monkeypatch.setattr(warm_module, "warm_available", lambda: False)
        with pytest.raises(ConfigurationError, match="fork"):
            WarmBackend(max_workers=2)

"""The warm backend's wire format: frames must round-trip exactly.

Corruption must be loud — a truncated or oversized frame raises
:class:`FrameError`, a cleanly closed pipe raises
:class:`EndOfStream` — because a silently reinterpreted stream would
be a determinism bug the golden tests could never localise.
"""

import os
import struct

import pytest

from repro.backend import frames
from repro.backend.frames import (
    EndOfStream,
    FrameError,
    FrameReader,
    decode_batch,
    decode_results,
    encode_batch,
    encode_frame,
    encode_results,
    read_frame,
    write_frame,
)


class TestFrameRoundTrip:
    def test_pipe_round_trip(self):
        read_fd, write_fd = os.pipe()
        try:
            write_frame(write_fd, frames.HELLO)
            write_frame(write_fd, frames.BATCH, b"payload bytes")
            assert read_frame(read_fd) == (frames.HELLO, b"")
            assert read_frame(read_fd) == (frames.BATCH, b"payload bytes")
        finally:
            os.close(read_fd)
            os.close(write_fd)

    def test_clean_close_is_end_of_stream(self):
        read_fd, write_fd = os.pipe()
        os.close(write_fd)
        try:
            with pytest.raises(EndOfStream):
                read_frame(read_fd)
        finally:
            os.close(read_fd)

    def test_mid_frame_truncation_is_frame_error(self):
        read_fd, write_fd = os.pipe()
        os.write(write_fd, encode_frame(frames.BATCH, b"full payload")[:7])
        os.close(write_fd)
        try:
            with pytest.raises(FrameError, match="truncated"):
                read_frame(read_fd)
        finally:
            os.close(read_fd)

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(FrameError, match="unknown frame kind"):
            encode_frame(99)

    def test_header_size_matches_encoding(self):
        assert len(encode_frame(frames.HELLO)) == frames.HEADER_SIZE


class TestFrameReader:
    def test_frames_split_across_arbitrary_reads(self):
        stream = b"".join(
            encode_frame(kind, payload)
            for kind, payload in [
                (frames.HELLO, b""),
                (frames.BATCH, b"abc"),
                (frames.RESULTS, b"x" * 300),
            ]
        )
        for chunk_size in (1, 2, 7, len(stream)):
            reader = FrameReader()
            got = []
            for start in range(0, len(stream), chunk_size):
                got.extend(reader.feed(stream[start:start + chunk_size]))
            assert got == [
                (frames.HELLO, b""),
                (frames.BATCH, b"abc"),
                (frames.RESULTS, b"x" * 300),
            ]

    def test_unknown_kind_in_stream_is_frame_error(self):
        reader = FrameReader()
        with pytest.raises(FrameError, match="unknown frame kind"):
            reader.feed(struct.pack("<IBI", 0, 42, 0))

    def test_oversized_length_prefix_is_frame_error(self):
        # A corrupt length must not look like a 4 GB allocation request.
        reader = FrameReader()
        header = struct.pack(
            "<IBI", frames.MAX_PAYLOAD + 1, frames.BATCH, 0
        )
        with pytest.raises(FrameError, match="too large"):
            reader.feed(header)

    def test_payload_bit_flip_is_frame_error(self):
        frame = bytearray(encode_frame(frames.RESULTS, b"result bytes"))
        frame[frames.HEADER_SIZE + 3] ^= 0x10
        reader = FrameReader()
        with pytest.raises(FrameError, match="checksum"):
            reader.feed(bytes(frame))

    def test_payload_bit_flip_is_frame_error_on_blocking_read(self):
        frame = bytearray(encode_frame(frames.BATCH, b"batch bytes"))
        frame[-1] ^= 0x01
        read_fd, write_fd = os.pipe()
        os.write(write_fd, bytes(frame))
        os.close(write_fd)
        try:
            with pytest.raises(FrameError, match="checksum"):
                read_frame(read_fd)
        finally:
            os.close(read_fd)


class TestBatchPayload:
    def test_entries_only_round_trip(self):
        entries = [(0, 7, 0), (0, -3, 1), (1, 2**40, 2)]
        batch = decode_batch(encode_batch(5, entries))
        assert batch.batch_id == 5
        assert batch.entries == tuple(entries)
        assert batch.extras == ()
        assert batch.carrier is None
        assert batch.tags is None

    def test_extras_carrier_and_tags_ride_the_tail(self):
        entries = [(frames.EXTRA_JOB, 0, 4), (2, 11, 5)]
        carrier = {"trace": "deadbeef", "span": "cafe"}
        tags = ((("kind", "extra"),), (("seed", 11),))
        batch = decode_batch(
            encode_batch(
                9, entries, extras=("job-obj",), carrier=carrier, tags=tags
            )
        )
        assert batch.entries == tuple(entries)
        assert batch.extras == ("job-obj",)
        assert batch.carrier == carrier
        assert batch.tags == tags

    def test_entries_are_fixed_width(self):
        base = len(encode_batch(0, []))
        one = len(encode_batch(0, [(1, 2, 3)]))
        two = len(encode_batch(0, [(1, 2, 3), (4, 5, 6)]))
        assert one - base == two - one  # 16 bytes per job, no pickling

    def test_truncated_entry_block_is_frame_error(self):
        payload = encode_batch(1, [(0, 1, 0), (0, 2, 1)])
        with pytest.raises(FrameError, match="truncated"):
            decode_batch(payload[:-4])


class TestResultsPayload:
    def test_round_trip(self):
        payload = encode_results(
            3, 17, 0.125, ["r0", "r1"], [{"name": "job"}]
        )
        batch_id, hits, seconds, results, wires = decode_results(payload)
        assert (batch_id, hits, seconds) == (3, 17, 0.125)
        assert results == ["r0", "r1"]
        assert wires == [{"name": "job"}]

    def test_none_wires_survive(self):
        _, _, _, results, wires = decode_results(
            encode_results(0, 0, 0.0, [], None)
        )
        assert results == []
        assert wires is None

"""Seeded corruption fuzzing of the warm backend's wire format.

The decode contract under arbitrary damage: a corrupted stream either
raises :class:`FrameError` or yields a strict prefix of the original
frames — never a hang, never a multi-gigabyte allocation, never a
silently different decode.  The CRC32 in every frame header is what
makes this hold for payload damage; the ``MAX_PAYLOAD`` bound covers
length-field damage.

Each case is driven by its own seeded ``random.Random``, so a failure
reproduces from the printed seed alone.
"""

import pickle
import random

import pytest

from repro.backend import frames
from repro.backend.frames import (
    FrameError,
    FrameReader,
    decode_batch,
    decode_results,
    encode_batch,
    encode_frame,
    encode_results,
)

#: The ceiling any single decode may allocate; far above every legal
#: frame in these streams, far below "the corrupt length was trusted".
SANE_BUFFER = 4 * 1024 * 1024


def build_stream(rng):
    """A realistic multi-frame stream and its expected decode."""
    expected = []
    parts = []
    for _ in range(rng.randrange(2, 6)):
        kind = rng.choice([frames.HELLO, frames.BATCH, frames.RESULTS])
        if kind == frames.HELLO:
            payload = b""
        elif kind == frames.BATCH:
            entries = [
                (0, rng.randrange(1000), index)
                for index in range(rng.randrange(1, 5))
            ]
            payload = encode_batch(rng.randrange(100), entries)
        else:
            payload = encode_results(
                rng.randrange(100), rng.randrange(10), rng.random(),
                [f"r{i}" for i in range(rng.randrange(1, 4))], None,
            )
        expected.append((kind, payload))
        parts.append(encode_frame(kind, payload))
    return b"".join(parts), expected


def corrupt(rng, stream):
    """One seeded mutation: truncation, bit flip, or byte overwrite."""
    mode = rng.choice(["truncate", "flip", "overwrite"])
    if mode == "truncate" or len(stream) == 0:
        return stream[:rng.randrange(len(stream))]
    damaged = bytearray(stream)
    position = rng.randrange(len(damaged))
    if mode == "flip":
        damaged[position] ^= 1 << rng.randrange(8)
    else:
        damaged[position] = rng.randrange(256)
    return bytes(damaged)


def drain(reader, data, chunk):
    """Feed ``data`` in chunks; returns the decoded frames."""
    got = []
    for start in range(0, len(data), chunk):
        got.extend(reader.feed(data[start:start + chunk]))
    return got


@pytest.mark.parametrize("seed", range(200))
def test_corrupted_stream_is_error_or_strict_prefix(seed):
    rng = random.Random(seed)
    stream, expected = build_stream(rng)
    damaged = corrupt(rng, stream)
    reader = FrameReader()
    try:
        got = drain(reader, damaged, chunk=rng.choice([1, 7, len(stream)]))
    except FrameError:
        return  # loud failure: exactly what corruption should produce
    # No error: everything decoded must be a prefix of the original
    # frames (truncation legitimately yields fewer complete frames),
    # and the reader must not be sitting on an absurd allocation.
    assert got == expected[:len(got)], f"silent wrong decode at seed {seed}"
    assert len(reader._buffer) <= SANE_BUFFER


@pytest.mark.parametrize("seed", range(100))
def test_corrupted_batch_payload_never_escapes_frame_error(seed):
    rng = random.Random(seed)
    entries = [(0, rng.randrange(1000), i) for i in range(3)]
    payload = encode_batch(7, entries, extras=("job",), carrier={"t": "x"})
    damaged = corrupt(rng, payload)
    try:
        batch = decode_batch(damaged)
    except FrameError:
        return
    # The tail is pickled, so a flip there can still deserialize; the
    # decoder's shape checks guarantee the result is at least typed
    # sanely — the CRC layer above is what rejects it in production.
    assert isinstance(batch.entries, tuple)
    assert isinstance(batch.extras, tuple)


@pytest.mark.parametrize("seed", range(100))
def test_corrupted_results_payload_never_escapes_frame_error(seed):
    rng = random.Random(seed)
    payload = encode_results(3, 17, 0.125, ["r0", "r1"], [{"n": "j"}])
    damaged = corrupt(rng, payload)
    try:
        _, _, _, results, wires = decode_results(damaged)
    except FrameError:
        return
    assert isinstance(results, list)
    assert wires is None or isinstance(wires, list)


def test_corrupt_length_field_never_allocates_the_lie():
    # Force the worst case: the length bytes corrupt to a huge value.
    frame = bytearray(encode_frame(frames.RESULTS, b"payload"))
    frame[0:4] = (0xFFFFFFFF).to_bytes(4, "little")
    with pytest.raises(FrameError, match="too large"):
        FrameReader().feed(bytes(frame))


def test_failure_frame_body_is_validated_by_consumer():
    # The warm coordinator unpickles FAILURE bodies; a damaged body
    # must be representable as a FrameError there, so the payload
    # itself has to be un-unpicklable, not segfault-y.  Pin that a
    # garbage body raises cleanly at pickle level.
    with pytest.raises(Exception):
        pickle.loads(b"\x80garbage")

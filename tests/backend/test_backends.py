"""The backend contract: where a job runs must never be observable.

Every job carries its complete seed and boots its own machine, so the
inline, pool, and warm backends must produce byte-identical tables for
the same plan — the backend choice may only move wall-clock time and
``repro_backend_*`` accounting.
"""

import pytest

from repro.backend import (
    AdaptiveBatchSizer,
    make_backend,
    set_default_backend,
    warm_available,
)
from repro.core.config import Mode, Pattern
from repro.core.sweep import SweepSpec
from repro.exec import BackendExecutor, set_default_jobs

needs_fork = pytest.mark.skipif(
    not warm_available(), reason="warm backend needs the fork start method"
)


@pytest.fixture(autouse=True)
def clean_backend_state(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    set_default_backend(None)
    set_default_jobs(None)
    yield
    set_default_backend(None)
    set_default_jobs(None)


def small_plan(base_seed: int = 0):
    return SweepSpec(
        processors=("CD",),
        infras=("pm", "pc"),
        patterns=(Pattern.START_READ, Pattern.READ_READ),
        modes=(Mode.USER, Mode.USER_KERNEL),
        repeats=2,
        base_seed=base_seed,
        io_interrupts=False,
    ).plan()


def run_on(backend_name: str, plan, **backend_kwargs) -> str:
    backend = make_backend(backend_name, **backend_kwargs)
    try:
        table = BackendExecutor(backend, cache=None).run(plan)
    finally:
        backend.shutdown(grace=2.0)
    return table.to_csv()


class TestEquivalence:
    @needs_fork
    def test_warm_matches_inline_byte_for_byte(self):
        plan = small_plan()
        assert run_on("warm", plan, workers=2) == run_on("inline", plan)

    def test_pool_matches_inline_byte_for_byte(self):
        plan = small_plan(base_seed=1)
        assert run_on("pool", plan, workers=2) == run_on("inline", plan)

    @needs_fork
    def test_warm_reuses_its_fleet_across_plans(self):
        backend = make_backend("warm", workers=2)
        try:
            executor = BackendExecutor(backend, cache=None)
            executor.run(small_plan(base_seed=2))
            pids_first = sorted(backend.worker_pids)
            executor.run(small_plan(base_seed=3))
            assert sorted(backend.worker_pids) == pids_first
            assert backend.stats.workers_spawned == 2
        finally:
            backend.shutdown(grace=2.0)


class TestAccounting:
    def test_inline_counts_jobs_and_batches(self):
        plan = small_plan(base_seed=4)
        backend = make_backend("inline")
        BackendExecutor(backend, cache=None).run(plan)
        assert backend.stats.jobs == len(plan)
        assert backend.stats.batches == 1  # inline runs one batch

    def test_inline_ignores_the_cap(self):
        # Splitting buys nothing in-process: one dispatch unit, always.
        plan = small_plan(base_seed=5)
        backend = make_backend("inline", batch_cap=5)
        BackendExecutor(backend, cache=None).run(plan)
        assert backend.stats.batches == 1

    def test_configured_cap_pins_the_batch_count(self):
        plan = small_plan(base_seed=5)
        backend = make_backend("pool", workers=2, batch_cap=5)
        BackendExecutor(backend, cache=None).run(plan)
        expected = -(-len(plan) // 5)  # ceil
        assert backend.stats.batches == expected

    @needs_fork
    def test_warm_preloads_every_snapshot(self):
        # Template registration pre-populates each worker's snapshot
        # store, so every machine boot of the plan is absorbed.
        plan = small_plan(base_seed=6)
        backend = make_backend("warm", workers=2)
        try:
            BackendExecutor(backend, cache=None).run(plan)
            assert backend.stats.snapshot_hits == len(plan)
            assert backend.stats.frames_sent >= backend.stats.batches
            assert backend.stats.frame_bytes_sent > 0
            assert sum(backend.worker_batches.values()) == (
                backend.stats.batches
            )
        finally:
            backend.shutdown(grace=2.0)


class TestAdaptiveBatchSizer:
    def test_configured_cap_is_returned_verbatim(self):
        sizer = AdaptiveBatchSizer()
        sizer.record(10, 10.0)  # measured cost must not override the cap
        assert sizer.next_size(1000, workers=4, cap=32) == 32

    def test_heuristic_before_any_measurement(self):
        sizer = AdaptiveBatchSizer()
        # Four batches per worker: 64 pending on 2 workers -> 8 each.
        assert sizer.next_size(64, workers=2) == 8
        assert sizer.next_size(1, workers=8) == 1

    def test_cheap_jobs_grow_batches_to_the_latency_target(self):
        sizer = AdaptiveBatchSizer()
        sizer.record(100, 0.0001)  # 1 microsecond per job
        assert sizer.next_size(10**6, workers=2) == sizer.AUTO_CAP

    def test_slow_jobs_shrink_batches(self):
        sizer = AdaptiveBatchSizer()
        sizer.record(1, 1.0)  # one second per job
        assert sizer.next_size(1000, workers=2) == 1

    def test_record_folds_an_ema(self):
        sizer = AdaptiveBatchSizer()
        sizer.record(1, 1.0)
        assert sizer.per_job_seconds == 1.0
        sizer.record(1, 0.0)
        assert sizer.per_job_seconds == pytest.approx(0.5)

    def test_bogus_measurements_ignored(self):
        sizer = AdaptiveBatchSizer()
        sizer.record(0, 1.0)
        sizer.record(5, -1.0)
        assert sizer.per_job_seconds is None

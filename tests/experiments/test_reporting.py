"""Tests for batch report generation."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.reporting import (
    generate_report,
    run_artifacts,
    write_report,
)


class TestRunArtifacts:
    def test_subset(self):
        results = run_artifacts(("table1", "table2"))
        assert set(results) == {"table1", "table2"}
        assert results["table1"].summary["mismatches"] == []

    def test_unknown_artifact(self):
        with pytest.raises(ConfigurationError, match="unknown artifacts"):
            run_artifacts(("figure99",))

    def test_repeats_forwarded_where_supported(self):
        results = run_artifacts(("figure4",), repeats=1)
        assert len(results["figure4"].data) > 0

    def test_repeats_ignored_where_unsupported(self):
        # table1.run() takes no repeats; must not crash.
        run_artifacts(("table1",), repeats=5)


class TestGenerateReport:
    def test_markdown_structure(self):
        results = run_artifacts(("table1", "figure3"))
        text = generate_report(results)
        assert text.startswith("# Reproduction report")
        assert "## table1" in text
        assert "## figure3" in text
        assert "```" in text

    def test_notes_rendered(self):
        results = run_artifacts(("figure6+table3",), repeats=1)
        text = generate_report(results)
        assert "*Note:" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError, match="no results"):
            generate_report({})


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "report.md"
        results = write_report(path, artifacts=("table1",))
        assert path.exists()
        assert "table1" in results
        assert "Pentium D 925" in path.read_text()

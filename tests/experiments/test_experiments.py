"""Tests running every paper-artifact experiment at reduced scale and
asserting the paper's qualitative conclusions hold."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig01_overview,
    fig02_stack,
    fig03_benchmark,
    fig04_tsc,
    fig05_registers,
    fig06_infrastructure,
    fig07_uk_slope,
    fig08_user_slope,
    fig09_kernel_by_size,
    fig10_cycles,
    fig11_bimodal,
    fig12_placement,
    sec43_anova,
    tab01_processors,
    tab02_patterns,
)

QUICK_SIZES = (1, 100_000, 500_000, 1_000_000)


class TestRegistry:
    def test_fifteen_artifacts(self):
        assert len(EXPERIMENTS) == 15

    def test_ids_cover_every_table_and_figure(self):
        for artifact in ("table1", "table2", "figure1", "figure2", "figure3",
                         "figure4", "figure5", "figure6+table3", "section4.3",
                         "figure7", "figure8", "figure9", "figure10",
                         "figure11", "figure12"):
            assert artifact in EXPERIMENTS


class TestTables:
    def test_table1_matches_paper(self):
        result = tab01_processors.run()
        assert result.summary["mismatches"] == []
        assert "Pentium D 925" in result.report()

    def test_table2_matches_paper(self):
        result = tab02_patterns.run()
        assert result.summary["matches_paper"]


class TestStructuralFigures:
    def test_figure2_stack_consistent(self):
        result = fig02_stack.run()
        assert result.summary["paths"] == 6
        assert result.summary["layering_consistent"]

    def test_figure3_model_derived_from_source(self):
        result = fig03_benchmark.run()
        assert result.summary["model_holds"]
        assert result.summary["structure_ok"]


class TestFigure1:
    def test_overview_distribution(self):
        result = fig01_overview.run(repeats=1)
        assert result.summary["n_measurements"] > 500
        user = result.summary["user"]
        uk = result.summary["user+kernel"]
        # minimum error close to zero, long tails (paper Figure 1)
        assert user["min"] < 50
        assert user["max"] > 1500
        assert uk["max"] > user["max"]
        assert uk["median"] > user["median"]


class TestFigure4:
    def test_tsc_effect(self):
        result = fig04_tsc.run(repeats=2)
        s = result.summary
        # read-based patterns inflate badly with TSC off
        assert s[("user", "rr", False)] > 10 * s[("user", "rr", True)]
        assert s[("user", "ro", False)] > 10 * s[("user", "ro", True)]
        # rr and ro are equally affected (both begin with a read)
        ratio = s[("user", "rr", False)] / s[("user", "ro", False)]
        assert 0.8 < ratio < 1.2
        # start-stop is unaffected
        assert s[("user+kernel", "ao", False)] == pytest.approx(
            s[("user+kernel", "ao", True)], rel=0.1
        )
        # start-read is less affected than read-read
        ar_inflation = s[("user+kernel", "ar", False)] - s[("user+kernel", "ar", True)]
        rr_inflation = s[("user+kernel", "rr", False)] - s[("user+kernel", "rr", True)]
        assert ar_inflation < rr_inflation / 2


class TestFigure5:
    def test_register_scaling(self):
        result = fig05_registers.run(repeats=2)
        s = result.summary
        # pm u+k read-read: ~100 instructions per extra register
        assert 80 <= s[("pm", "user+kernel", "rr")]["slope_per_register"] <= 130
        # pm user mode: flat
        assert abs(s[("pm", "user", "rr")]["slope_per_register"]) < 5
        # pc read-read: ~13 per register
        assert 8 <= s[("pc", "user+kernel", "rr")]["slope_per_register"] <= 20
        # start-stop flat for both
        assert abs(s[("pm", "user+kernel", "ao")]["slope_per_register"]) < 10
        assert abs(s[("pc", "user+kernel", "ao")]["slope_per_register"]) < 10


class TestFigure6Table3:
    def test_infrastructure_ordering(self):
        result = fig06_infrastructure.run(repeats=2)
        checks = result.summary["checks"]
        assert checks["layering_monotone"]
        assert checks["pm_wins_user"]
        assert checks["pc_wins_user_kernel"]

    def test_magnitudes_near_paper(self):
        result = fig06_infrastructure.run(repeats=2)
        s = result.summary
        # pm user-mode error ~37; pm u+k ~726 (paper Table 3)
        assert 25 <= s[("user", "pm")]["median"] <= 60
        assert 500 <= s[("user+kernel", "pm")]["median"] <= 950


class TestSection43:
    def test_anova_significance_pattern(self):
        result = sec43_anova.run(repeats=2)
        significant = set(result.summary["significant"])
        assert {"processor", "infra", "pattern"} <= significant
        assert "opt" not in significant


class TestDurationErrors:
    def test_figure7_slopes_positive_and_small(self):
        result = fig07_uk_slope.run(
            repeats=4, sizes=QUICK_SIZES, infras=("pm", "pc"),
            processors=("CD", "K8"),
        )
        slopes = [v for k, v in result.summary.items() if isinstance(k, tuple)]
        assert all(s > 0 for s in slopes)
        assert all(s < 0.02 for s in slopes)

    def test_figure8_user_slopes_tiny(self):
        result = fig08_user_slope.run(
            repeats=10, sizes=QUICK_SIZES, infras=("pm", "pc"),
            processors=("CD", "K8"),
        )
        assert result.summary["max_abs_slope"] < 1e-4

    def test_figure9_kernel_error_grows(self):
        result = fig09_kernel_by_size.run(repeats=20, sizes=QUICK_SIZES)
        assert 0.0005 < result.summary["slope"] < 0.006
        assert result.summary["mean_at_1m"] > result.summary["mean_at_500k"]


class TestCycleAccuracy:
    def test_figure10_spread(self):
        result = fig10_cycles.run(repeats=1, processors=("PD", "K8"))
        assert result.summary["pd_spread"] > 1.5

    def test_figure11_bimodality(self):
        result = fig11_bimodal.run(repeats=1)
        assert result.summary["bimodal"]
        assert 2.0 <= result.summary["min_cpi"] < 2.5
        assert 3.0 <= result.summary["max_cpi"] < 3.5

    def test_figure12_interaction(self):
        result = fig12_placement.run(repeats=1)
        assert result.summary["interaction_present"]
        slopes = result.summary["slopes"].values()
        assert min(slopes) >= 1.9
        assert max(slopes) <= 3.4


class TestReports:
    @pytest.mark.parametrize("runner", [tab01_processors.run, tab02_patterns.run])
    def test_reports_render(self, runner):
        result = runner()
        text = result.report()
        assert text.startswith("== ")
        assert len(text.splitlines()) > 2

"""Tests for the extension experiments (beyond the paper's evaluation)."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    EXTENSIONS,
    ext_cache_accuracy,
    ext_compensation,
    ext_cross_platform,
    ext_frequency,
    ext_multiplexing,
    ext_sampling,
    ext_standalone_tools,
    ext_thread_isolation,
)


class TestRegistry:
    def test_eight_extensions(self):
        assert len(EXTENSIONS) == 8

    def test_all_experiments_superset(self):
        assert set(EXTENSIONS) <= set(ALL_EXPERIMENTS)
        assert len(ALL_EXPERIMENTS) == 23


class TestStandaloneTools:
    def test_korn_magnitudes(self):
        result = ext_standalone_tools.run()
        assert result.summary["some_tool_exceeds_60000pct"]
        assert result.summary["all_tools_exceed_10000pct"]
        # the fine-grained harness is orders of magnitude better
        assert result.summary["harness_relative_error_pct"] < 100


class TestCompensation:
    def test_fixed_cost_removed_duration_survives(self):
        result = ext_compensation.run(repeats=3)
        assert result.summary["user_fixed_removed"]
        assert result.summary["duration_error_survives"]


class TestMultiplexing:
    def test_uniform_accurate_coarse_biased(self):
        result = ext_multiplexing.run()
        assert result.summary["uniform_accurate"]
        assert result.summary["coarse_load_bias"] > 0.5
        assert result.summary["fine_slicing_helps"]


class TestSampling:
    def test_overhead_per_sample_is_handler_size(self):
        result = ext_sampling.run()
        from repro.sampling.profiler import SamplingProfiler

        for period, row in result.summary.items():
            if not isinstance(period, int) or period == 0:
                continue
            if row["samples"]:
                assert row["error_per_sample"] == pytest.approx(
                    SamplingProfiler.HANDLER_INSTRUCTIONS, rel=0.2
                )

    def test_shorter_period_more_error(self):
        result = ext_sampling.run()
        errors = [
            result.summary[p]["error"]
            for p in (0, 1_000_000, 250_000, 50_000)
        ]
        assert errors == sorted(errors)


class TestFrequency:
    def test_guideline_confirmed(self):
        result = ext_frequency.run(runs=6)
        assert result.summary["guideline_confirmed"]
        assert result.summary["ondemand_spread"] > 0.005


class TestCacheAccuracy:
    def test_counts_validate_and_composition_matters(self):
        result = ext_cache_accuracy.run(repeats=2)
        assert result.summary["all_within_1pct"]
        assert result.summary["instr_more_contaminated_when_memory_bound"]
        assert result.summary["duration_error_grows_with_stride"]


class TestThreadIsolation:
    def test_both_threads_isolated(self):
        result = ext_thread_isolation.run()
        assert result.summary["isolated"]
        assert result.summary["switches"] >= 10
        # B did twice A's work and measured it, despite sharing the core.
        assert result.summary["B"]["work"] == 2 * result.summary["A"]["work"]


class TestCrossPlatform:
    def test_conclusions_platform_invariant(self):
        result = ext_cross_platform.run()
        assert result.summary["fixed_cost_benchmark_invariant"]
        assert result.summary["pm_beats_pc_everywhere"]
        assert result.summary["layering_everywhere"]
        platforms = set(result.data.column("platform"))
        assert platforms == {"PD", "CD", "K8", "P3"}

"""Unit tests for the content-addressed result cache (repro.exec.cache)."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.exec.cache import (
    ResultCache,
    code_version,
    configure_default_cache,
    default_cache,
    stable_token,
)


class TestStableToken:
    def test_same_factors_same_token(self):
        assert stable_token("a", 1, True) == stable_token("a", 1, True)

    def test_any_factor_difference_changes_token(self):
        base = stable_token("a", 1)
        assert stable_token("a", 2) != base
        assert stable_token("b", 1) != base
        assert stable_token("a", 1, None) != base

    def test_code_version_is_mixed_in(self, monkeypatch):
        before = stable_token("a")
        monkeypatch.setattr(
            "repro.exec.cache.code_version", lambda: "other-version"
        )
        assert stable_token("a") != before

    def test_code_version_names_package_and_schema(self):
        assert code_version().startswith("repro-")
        assert "/schema-" in code_version()


class TestMemoryTier:
    def test_round_trip_and_stats(self):
        cache = ResultCache()
        token = stable_token("x")
        assert cache.get(token) is None
        cache.put(token, {"value": 41})
        assert cache.get(token) == {"value": 41}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_lru_evicts_oldest(self):
        cache = ResultCache(max_entries=2)
        cache.put("t1", 1)
        cache.put("t2", 2)
        cache.put("t3", 3)
        assert len(cache) == 2
        assert cache.get("t1") is None
        assert cache.get("t3") == 3

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("t1", 1)
        cache.put("t2", 2)
        cache.get("t1")  # t1 is now most recent; t2 must evict first
        cache.put("t3", 3)
        assert cache.get("t1") == 1
        assert cache.get("t2") is None

    def test_clear_drops_memory(self):
        cache = ResultCache()
        cache.put("t", 1)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ConfigurationError, match="max_entries"):
            ResultCache(max_entries=0)


class TestDiskTier:
    def test_round_trip_across_cache_instances(self, tmp_path):
        writer = ResultCache(disk_dir=tmp_path)
        token = stable_token("disk")
        writer.put(token, [1, 2, 3])

        reader = ResultCache(disk_dir=tmp_path)
        assert reader.get(token) == [1, 2, 3]
        assert reader.stats.disk_hits == 1
        # Promoted to memory: the second read no longer touches disk.
        assert reader.get(token) == [1, 2, 3]
        assert reader.stats.disk_hits == 1

    def test_store_is_content_addressed_by_token_prefix(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        token = stable_token("layout")
        cache.put(token, "value")
        path = tmp_path / token[:2] / f"{token[2:]}.pkl"
        assert path.is_file()
        with path.open("rb") as handle:
            assert pickle.load(handle) == "value"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        token = stable_token("corrupt")
        cache.put(token, "good")
        (tmp_path / token[:2] / f"{token[2:]}.pkl").write_bytes(b"not pickle")
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get(token) is None

    def test_memory_only_never_touches_disk(self, tmp_path):
        cache = ResultCache()
        cache.put(stable_token("mem"), "value")
        assert list(tmp_path.iterdir()) == []


class TestDefaultCache:
    @pytest.fixture(autouse=True)
    def _restore_default(self):
        yield
        configure_default_cache(enabled=True)

    def test_configure_disables_and_reenables(self):
        assert configure_default_cache(enabled=False) is None
        assert default_cache() is None
        cache = configure_default_cache(enabled=True)
        assert default_cache() is cache

    def test_configure_sets_disk_dir(self, tmp_path):
        cache = configure_default_cache(disk_dir=tmp_path / "store")
        assert cache.disk_dir == tmp_path / "store"

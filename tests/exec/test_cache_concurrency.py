"""Concurrent writers against one on-disk cache directory.

The disk store is shared state: parallel workers, racing processes, and
overlapping sweeps all write the same content-addressed paths.  The
atomic temp-file + ``os.replace`` protocol must leave every entry
complete and readable no matter how the writers interleave — no torn
pickles, no leftover temp files, no lost entries.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.exec.cache import ResultCache


def _hammer(args):
    """One writer process: put its own values for every shared token."""
    disk_dir, writer_id, tokens = args
    cache = ResultCache(disk_dir=Path(disk_dir))
    for round_number in range(5):
        for token in tokens:
            cache.put(token, {"token": token, "writer": writer_id,
                              "round": round_number})
    return writer_id


def shared_tokens(n=8):
    # Real tokens are hex; keep the two-char sharding prefix realistic.
    return [f"{i:02x}{'f' * 14}" for i in range(n)]


class TestConcurrentDiskWriters:
    def test_racing_writers_leave_every_entry_readable(self, tmp_path):
        tokens = shared_tokens()
        with ProcessPoolExecutor(max_workers=4) as pool:
            done = list(pool.map(
                _hammer,
                [(str(tmp_path), writer, tokens) for writer in range(4)],
            ))
        assert sorted(done) == [0, 1, 2, 3]
        # Every token is present, unpickles cleanly, and is one
        # writer's complete value — never a torn mix.
        reader = ResultCache(disk_dir=tmp_path)
        for token in tokens:
            value = reader.get(token)
            assert value is not None
            assert value["token"] == token
            assert value["writer"] in range(4)
        # The replace protocol cleans up after itself.
        assert not list(tmp_path.rglob("*.tmp"))

    def test_interrupted_writer_never_corrupts_a_reader(self, tmp_path):
        """A half-written temp file is invisible: readers either miss
        entirely or see a complete value."""
        cache = ResultCache(disk_dir=tmp_path)
        token = shared_tokens(1)[0]
        cache.put(token, {"ok": True})
        # Simulate a crashed writer: a stray temp file next to the entry.
        entry = tmp_path / token[:2] / f"{token[2:]}.pkl"
        stray = entry.parent / "leftover.tmp"
        stray.write_bytes(b"\x80garbage")
        fresh = ResultCache(disk_dir=tmp_path)
        assert fresh.get(token) == {"ok": True}

    def test_last_replace_wins_and_is_complete(self, tmp_path):
        token = shared_tokens(1)[0]
        first = ResultCache(disk_dir=tmp_path)
        second = ResultCache(disk_dir=tmp_path)
        first.put(token, {"writer": "first"})
        second.put(token, {"writer": "second"})
        entry = tmp_path / token[:2] / f"{token[2:]}.pkl"
        with entry.open("rb") as handle:
            assert pickle.load(handle) == {"writer": "second"}

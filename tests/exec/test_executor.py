"""The executor layer's central promise: serial ≡ parallel ≡ cached.

Every job carries its complete seed and boots its own machine, so the
execution strategy must not be observable in the results.  These tests
compare the rendered CSV byte-for-byte.
"""

from dataclasses import dataclass

import pytest

from repro.core.config import Mode, Pattern
from repro.core.sweep import SweepSpec
from repro.errors import ConfigurationError
from repro.backend import set_default_backend
from repro.exec import (
    BackendExecutor,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
    get_executor,
    resolve_jobs,
    set_default_jobs,
)


@pytest.fixture(autouse=True)
def _no_ambient_jobs(monkeypatch):
    """Isolate worker-count resolution from the session's environment."""
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    set_default_jobs(None)
    set_default_backend(None)
    yield
    set_default_jobs(None)
    set_default_backend(None)


def small_plan(base_seed: int = 0):
    """A real factorial sweep, big enough to engage the process pool."""
    return SweepSpec(
        processors=("CD",),
        infras=("pm", "pc"),
        patterns=(Pattern.START_READ, Pattern.READ_READ),
        modes=(Mode.USER, Mode.USER_KERNEL),
        repeats=2,
        base_seed=base_seed,
        io_interrupts=False,
    ).plan()


@dataclass(frozen=True)
class SquareJob:
    """A minimal generic job: execute() only, no cache_token()."""

    n: int

    def execute(self) -> int:
        return self.n * self.n


class TestDeterminism:
    def test_serial_and_parallel_tables_are_byte_identical(self):
        plan = small_plan()
        assert len(plan) >= ParallelExecutor.MIN_BATCH
        serial = SerialExecutor(cache=None).run(plan)
        parallel = ParallelExecutor(max_workers=2, cache=None).run(plan)
        assert serial.to_csv() == parallel.to_csv()

    def test_cached_rerun_is_byte_identical_and_all_hits(self):
        cache = ResultCache()
        plan = small_plan(base_seed=1)
        first = SerialExecutor(cache=cache).run(plan)
        assert cache.stats.stores == len(plan)
        second = SerialExecutor(cache=cache).run(plan)
        assert first.to_csv() == second.to_csv()
        assert cache.stats.hits == len(plan)

    def test_parallel_run_populates_cache_serial_run_reuses(self):
        cache = ResultCache()
        plan = small_plan(base_seed=2)
        parallel = ParallelExecutor(max_workers=2, cache=cache).run(plan)
        serial = SerialExecutor(cache=cache).run(plan)
        assert parallel.to_csv() == serial.to_csv()
        assert cache.stats.misses == len(plan)
        assert cache.stats.hits == len(plan)


class TestExecutorMechanics:
    def test_progress_reports_every_index_in_order(self):
        plan = small_plan(base_seed=3)
        seen: list[int] = []
        SerialExecutor(cache=None).run(plan, progress=seen.append)
        assert seen == list(range(len(plan)))

    def test_generic_jobs_without_cache_token(self):
        jobs = [SquareJob(n) for n in range(12)]
        assert SerialExecutor(cache=ResultCache()).map(jobs) == [
            n * n for n in range(12)
        ]

    def test_parallel_maps_generic_jobs(self):
        jobs = [SquareJob(n) for n in range(20)]
        executor = ParallelExecutor(max_workers=2, cache=None)
        assert executor.map(jobs) == [n * n for n in range(20)]

    def test_small_batches_run_inline(self):
        executor = ParallelExecutor(max_workers=2, cache=None)
        jobs = [SquareJob(n) for n in range(ParallelExecutor.MIN_BATCH - 1)]
        # Inline fallback: no pool spawned, results still correct.
        assert executor._execute(jobs, range(len(jobs))) == [
            job.n * job.n for job in jobs
        ]


class TestWorkerResolution:
    def test_default_is_serial(self):
        assert resolve_jobs() == 1
        assert isinstance(get_executor(), SerialExecutor)

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        set_default_jobs(2)
        assert resolve_jobs(4) == 4

    def test_set_default_jobs_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        set_default_jobs(2)
        assert resolve_jobs() == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        executor = get_executor()
        # Multi-worker runs now default to the warm backend.
        assert isinstance(executor, BackendExecutor)
        assert executor.backend.name == "warm"

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)
        with pytest.raises(ConfigurationError):
            set_default_jobs(-1)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigurationError):
            resolve_jobs()

    def test_get_executor_defaults_to_warm(self):
        executor = get_executor(jobs=4)
        assert isinstance(executor, BackendExecutor)
        assert executor.backend.name == "warm"
        assert executor.backend.max_workers == 4

    def test_get_executor_picks_parallel_when_asked(self):
        executor = get_executor(jobs=4, backend="pool")
        assert isinstance(executor, ParallelExecutor)
        assert executor.max_workers == 4

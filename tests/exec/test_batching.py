"""Batched dispatch: resolution chain, counters, and result identity.

Batching is pure plumbing — any batch size must give byte-identical
tables, only the pickling/IPC accounting may move.
"""

import pytest

from repro.core.config import Mode, Pattern
from repro.core.sweep import SweepSpec
from repro.errors import ConfigurationError
from repro.exec import ParallelExecutor, SerialExecutor
from repro.exec.executor import (
    resolve_batch_size,
    set_default_batch,
    set_default_jobs,
)


@pytest.fixture(autouse=True)
def clean_defaults():
    set_default_jobs(None)
    set_default_batch(None)
    yield
    set_default_jobs(None)
    set_default_batch(None)


def small_sweep(base_seed=0):
    return SweepSpec(
        processors=("CD",),
        infras=("pm", "pc"),
        patterns=(Pattern.START_READ, Pattern.READ_READ),
        modes=(Mode.USER, Mode.USER_KERNEL),
        repeats=2,
        base_seed=base_seed,
        io_interrupts=False,
    ).plan()


class TestBatchSizeResolution:
    def test_explicit_wins(self):
        set_default_batch(7)
        assert resolve_batch_size(3, pending=100, workers=4) == 3

    def test_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "9")
        set_default_batch(7)
        assert resolve_batch_size(None, pending=100, workers=4) == 7

    def test_env_beats_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "9")
        assert resolve_batch_size(None, pending=100, workers=4) == 9

    def test_auto_targets_four_batches_per_worker(self):
        assert resolve_batch_size(None, pending=100, workers=4) == 7
        assert resolve_batch_size(None, pending=8, workers=4) == 1

    def test_auto_is_capped(self):
        assert resolve_batch_size(None, pending=100_000, workers=2) == 64

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError, match="batch size"):
            resolve_batch_size(0, pending=10, workers=2)
        with pytest.raises(ConfigurationError, match="batch size"):
            set_default_batch(-1)
        with pytest.raises(ConfigurationError, match="batch size"):
            ParallelExecutor(max_workers=2, batch_size=0)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "many")
        with pytest.raises(ConfigurationError, match="REPRO_BATCH"):
            resolve_batch_size(None, pending=10, workers=2)
        monkeypatch.setenv("REPRO_BATCH", "0")
        with pytest.raises(ConfigurationError, match="REPRO_BATCH"):
            resolve_batch_size(None, pending=10, workers=2)


class TestBatchedResults:
    def test_any_batch_size_matches_serial(self):
        plan = small_sweep()
        serial = SerialExecutor(cache=None).run(plan).to_csv()
        for batch_size in (1, 3, 64):
            parallel = ParallelExecutor(
                max_workers=2, cache=None, batch_size=batch_size
            ).run(plan).to_csv()
            assert parallel == serial

    def test_chunksize_alias_still_accepted(self):
        plan = small_sweep(base_seed=1)
        serial = SerialExecutor(cache=None).run(plan).to_csv()
        legacy = ParallelExecutor(
            max_workers=2, cache=None, chunksize=4
        ).run(plan).to_csv()
        assert legacy == serial


class TestDispatchCounters:
    def test_parallel_counts_batches(self):
        plan = small_sweep(base_seed=2)
        executor = ParallelExecutor(max_workers=2, cache=None, batch_size=3)
        executor.run(plan)
        expected = -(-len(plan) // 3)  # ceil division
        assert executor.stats.batches == expected
        assert executor.stats.executed == len(plan)

    def test_workers_ship_snapshot_hits_home(self):
        plan = small_sweep(base_seed=3)
        executor = ParallelExecutor(max_workers=2, cache=None, batch_size=4)
        executor.run(plan)
        # Every job boots one machine; each worker pays one image
        # capture per distinct template, the rest are snapshot hits.
        assert executor.stats.snapshot_hits > 0
        assert executor.stats.snapshot_hits <= len(plan)

    def test_serial_counts_one_batch_and_local_hits(self):
        plan = small_sweep(base_seed=4)
        executor = SerialExecutor(cache=None)
        executor.run(plan)
        assert executor.stats.batches == 1
        assert executor.stats.snapshot_hits > 0

    def test_in_process_fallback_counts_one_batch(self):
        plan = small_sweep(base_seed=5)
        jobs = list(plan.jobs)[: ParallelExecutor.MIN_BATCH - 1]
        executor = ParallelExecutor(max_workers=2, cache=None)
        executor.map(jobs)
        assert executor.stats.batches == 1

"""The crash-safe sweep journal: append, restore, tolerate torn tails.

The journal's one promise: whatever was fsync'd before a crash comes
back on restore, a partially-written final record disappears silently,
and a journal written by different code matches nothing (tokens bake
in the code version).
"""

import pickle
import struct
import zlib

import pytest

from repro.exec import SweepJournal, journal_path
from repro.exec.cache import stable_token
from repro.exec.journal import active_journal, set_active_journal


@pytest.fixture(autouse=True)
def no_active_journal():
    yield
    set_active_journal(None)


def journal_at(tmp_path):
    return SweepJournal(tmp_path / "run.journal")


class TestRoundTrip:
    def test_append_then_restore(self, tmp_path):
        journal = journal_at(tmp_path)
        assert journal.open() == 0
        journal.append("tok-a", {"value": 1})
        journal.append("tok-b", {"value": 2})
        journal.close()

        again = journal_at(tmp_path)
        assert again.open() == 2
        assert again.get("tok-a") == {"value": 1}
        assert again.get("tok-b") == {"value": 2}
        assert again.get("tok-missing") is None
        again.close()

    def test_append_dedupes_by_token(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.open()
        journal.append("tok", "first")
        journal.append("tok", "second wins nothing")
        journal.close()
        size_after_two = journal.path.stat().st_size

        again = journal_at(tmp_path)
        assert again.open() == 1
        assert again.get("tok") == "first"
        again.append("tok", "still nothing")
        again.close()
        assert journal.path.stat().st_size == size_after_two

    def test_len_tracks_entries(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.open()
        assert len(journal) == 0
        journal.append("a", 1)
        journal.append("b", 2)
        assert len(journal) == 2
        journal.close()

    def test_discard_removes_the_sidecar(self, tmp_path):
        journal = journal_at(tmp_path)
        journal.open()
        journal.append("a", 1)
        journal.discard()
        assert not journal.path.exists()
        journal.discard()  # idempotent


class TestTornTail:
    def fill(self, tmp_path, n=3):
        journal = journal_at(tmp_path)
        journal.open()
        for index in range(n):
            journal.append(f"tok-{index}", {"index": index})
        journal.close()
        return journal.path

    @pytest.mark.parametrize("torn_bytes", [1, 3, 7])
    def test_truncated_final_record_is_dropped(self, tmp_path, torn_bytes):
        path = self.fill(tmp_path)
        whole = path.stat().st_size
        with path.open("r+b") as handle:
            handle.truncate(whole - torn_bytes)

        journal = journal_at(tmp_path)
        assert journal.open() == 2  # the first two records survive
        assert journal.get("tok-2") is None
        # The torn bytes were cut away: appends go after intact data.
        journal.append("tok-2", {"index": 2})
        journal.close()

        final = journal_at(tmp_path)
        assert final.open() == 3
        final.close()

    def test_corrupt_crc_stops_the_restore(self, tmp_path):
        path = self.fill(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # damage the last record's body
        path.write_bytes(bytes(data))
        journal = journal_at(tmp_path)
        assert journal.open() == 2
        journal.close()

    def test_oversized_length_prefix_is_not_trusted(self, tmp_path):
        path = tmp_path / "run.journal"
        body = pickle.dumps(("tok", "v"))
        path.write_bytes(
            struct.pack("<II", 2**31, zlib.crc32(body)) + body
        )
        journal = SweepJournal(path)
        assert journal.open() == 0
        journal.close()

    def test_garbage_body_is_not_trusted(self, tmp_path):
        path = tmp_path / "run.journal"
        body = b"\x80garbage that does not unpickle"
        path.write_bytes(
            struct.pack("<II", len(body), zlib.crc32(body)) + body
        )
        journal = SweepJournal(path)
        assert journal.open() == 0
        journal.close()

    def test_append_is_durable_before_close(self, tmp_path):
        # A SIGKILL'd process never calls close(); what append()
        # returned from must already be on disk.  Re-read the file via
        # a second handle without closing the first.
        journal = journal_at(tmp_path)
        journal.open()
        journal.append("tok", {"survives": True})
        raw = journal.path.read_bytes()
        length, crc = struct.unpack_from("<II", raw)
        body = raw[8:8 + length]
        assert zlib.crc32(body) == crc
        assert pickle.loads(body) == ("tok", {"survives": True})
        journal.close()


class TestJournalPath:
    def test_stable_for_same_run_identity(self, tmp_path):
        a = journal_path(tmp_path, "figure4", 2, 0)
        b = journal_path(tmp_path, "figure4", 2, 0)
        assert a == b
        assert a.name.endswith(".journal")

    def test_distinct_for_different_runs(self, tmp_path):
        assert journal_path(tmp_path, "figure4", 2, 0) != \
            journal_path(tmp_path, "figure4", 2, 1)
        assert journal_path(tmp_path, "figure4", 2, 0) != \
            journal_path(tmp_path, "figure9", 2, 0)

    def test_token_bakes_in_code_version(self, monkeypatch):
        # A journal from different code must match nothing; the token
        # function underneath guarantees that by hashing the version.
        from repro.exec import cache as cache_module

        before = stable_token("journal", "figure4", 2, 0)
        monkeypatch.setattr(
            cache_module, "code_version", lambda: "other-version"
        )
        assert stable_token("journal", "figure4", 2, 0) != before


class TestActiveJournal:
    def test_install_and_clear(self, tmp_path):
        assert active_journal() is None
        journal = journal_at(tmp_path)
        set_active_journal(journal)
        assert active_journal() is journal
        set_active_journal(None)
        assert active_journal() is None

    def test_executor_consults_the_active_journal(self, tmp_path):
        # A journalled value short-circuits execution: feed the journal
        # a fake result for a job's token, run the executor, and the
        # fake comes back — proof the resume path serves from disk.
        from repro.core.config import Mode, Pattern
        from repro.core.sweep import SweepSpec
        from repro.exec.executor import SerialExecutor, _token_of

        plan = SweepSpec(
            processors=("CD",), infras=("pc",),
            patterns=(Pattern.START_READ,), modes=(Mode.USER,),
            repeats=1, base_seed=0, io_interrupts=False,
        ).plan()
        jobs = list(plan)
        journal = journal_at(tmp_path)
        journal.open()
        journal.append(_token_of(jobs[0]), "journalled-result")
        set_active_journal(journal)
        try:
            results = SerialExecutor(cache=None).map(jobs)
        finally:
            set_active_journal(None)
            journal.close()
        assert results[0] == "journalled-result"
        # The remaining jobs were computed and journalled as they
        # completed — a crash after this point restores all of them.
        assert len(journal) == len(jobs)

"""Corrupt disk-cache entries: miss and quarantine, never a crash.

A torn pickle, truncated file, or garbage bytes under the cache
directory must cost exactly one recompute: the reader serves a miss,
renames the poison aside (``.quarantined``) for a post-mortem, and
counts the incident — while concurrent readers racing the same entry
stay exception-free.
"""

import pickle
import threading

import pytest

from repro.chaos import configure_chaos, reset_chaos
from repro.exec.cache import ResultCache
from repro.obs.metrics import build_unified_registry


@pytest.fixture(autouse=True)
def clean_chaos():
    reset_chaos()
    yield
    reset_chaos()


TOKEN = "ab" + "cd" * 31  # hex-shaped, realistic two-char shard prefix


def entry_path(cache, token=TOKEN):
    return cache._path_for(token)


def plant_corruption(tmp_path, token=TOKEN, data=b"\x80torn pickle!"):
    cache = ResultCache(disk_dir=tmp_path)
    path = entry_path(cache, token)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    return cache, path


class TestQuarantine:
    @pytest.mark.parametrize("data", [
        b"",                       # zero-length file
        b"\x80torn pickle!",       # garbage bytes
        pickle.dumps({"v": 1})[:-3],  # truncated mid-stream
    ])
    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path, data):
        cache, path = plant_corruption(tmp_path, data=data)
        assert cache.get(TOKEN) is None
        assert cache.stats.misses == 1
        assert cache.stats.quarantined == 1
        assert not path.exists()
        assert path.with_name(path.name + ".quarantined").exists()

    def test_quarantined_entry_can_be_rewritten_and_read(self, tmp_path):
        cache, _ = plant_corruption(tmp_path)
        assert cache.get(TOKEN) is None
        cache.put(TOKEN, {"fresh": True})
        # A second cache (no memory tier warm-up) reads the rewrite.
        assert ResultCache(disk_dir=tmp_path).get(TOKEN) == {"fresh": True}

    def test_quarantine_increments_the_unified_counter(self, tmp_path):
        registry = build_unified_registry()
        counter = registry.get("repro_cache_quarantined_total")
        before = counter.value
        cache, _ = plant_corruption(tmp_path)
        cache.get(TOKEN)
        assert counter.value == before + 1

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path)
        assert cache.get(TOKEN) is None
        assert cache.stats.quarantined == 0


class TestChaosWriteFaults:
    def test_enospc_degrades_to_memory_only(self, tmp_path):
        configure_chaos("cache-enospc:p=1")
        cache = ResultCache(disk_dir=tmp_path)
        cache.put(TOKEN, {"v": 1})
        # The write was swallowed; the memory tier still serves.
        assert cache.get(TOKEN) == {"v": 1}
        assert not entry_path(cache).exists()
        # A fresh reader sees a miss, not an exception.
        assert ResultCache(disk_dir=tmp_path).get(TOKEN) is None

    def test_torn_write_quarantines_on_next_read(self, tmp_path):
        configure_chaos("cache-torn:p=1,times=1")
        writer = ResultCache(disk_dir=tmp_path)
        writer.put(TOKEN, {"v": list(range(256))})
        reader = ResultCache(disk_dir=tmp_path)
        assert reader.get(TOKEN) is None
        assert reader.stats.quarantined == 1

    def test_concurrent_readers_vs_faulty_writer_never_raise(self, tmp_path):
        # Satellite (d): readers hammering tokens while a writer's
        # writes are being torn and ENOSPC'd must only ever see a hit,
        # a miss, or a quarantine — never an exception.
        configure_chaos("cache-torn:p=0.5,seed=3;cache-enospc:p=0.3,seed=4")
        tokens = [f"{i:02x}" + "ef" * 31 for i in range(16)]
        writer = ResultCache(disk_dir=tmp_path)
        errors = []
        stop = threading.Event()
        readers = [ResultCache(disk_dir=tmp_path) for _ in range(4)]

        def read_loop(cache):
            try:
                while not stop.is_set():
                    for token in tokens:
                        value = cache.get(token)
                        assert value is None or value["token"] == token
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        threads = [
            threading.Thread(target=read_loop, args=(cache,))
            for cache in readers
        ]
        for thread in threads:
            thread.start()
        try:
            for round_number in range(30):
                for token in tokens:
                    writer.put(token, {"token": token, "round": round_number})
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        assert not errors
        # The chaos actually fired: at least one reader quarantined a
        # torn entry (p=0.5 over 480 writes cannot all miss).
        assert sum(cache.stats.quarantined for cache in readers) >= 1

"""Trace propagation through the executors, including the pool boundary.

The key claims: span identity survives pickling into worker processes
(parent/child links reconnect in the coordinator), and tracing is a
pure observer — results are byte-identical with it on or off.
"""

from repro import obs
from repro.core.config import Mode, Pattern
from repro.core.sweep import SweepSpec
from repro.exec import ParallelExecutor, SerialExecutor
from repro.obs.spans import TraceCollector


def pool_sized_plan(base_seed=0):
    plan = SweepSpec(
        processors=("CD",),
        infras=("pm", "pc"),
        patterns=(Pattern.START_READ, Pattern.READ_READ),
        modes=(Mode.USER, Mode.USER_KERNEL),
        repeats=2,
        base_seed=base_seed,
        io_interrupts=False,
    ).plan()
    assert len(plan) >= ParallelExecutor.MIN_BATCH
    return plan


def traced_run(executor, plan):
    collector = TraceCollector()
    with obs.activate(collector):
        table = executor.run(plan)
    return table, collector


class TestSerialTracing:
    def test_one_span_per_job_under_the_map_span(self):
        plan = pool_sized_plan()
        _, collector = traced_run(SerialExecutor(cache=None), plan)
        by_name: dict = {}
        for span in collector.spans:
            by_name.setdefault(span.name, []).append(span)
        (map_span,) = by_name["executor.map"]
        (dispatch_span,) = by_name["executor.dispatch"]
        assert dispatch_span.parent_id == map_span.span_id
        assert len(by_name["job"]) == len(plan)
        assert all(
            s.parent_id == dispatch_span.span_id for s in by_name["job"]
        )
        assert map_span.attributes["executed"] == len(plan)
        assert map_span.attributes["cache_hits"] == 0

    def test_measurement_spans_nest_inside_job_spans(self):
        plan = pool_sized_plan(base_seed=1)
        _, collector = traced_run(SerialExecutor(cache=None), plan)
        jobs = {s.span_id for s in collector.spans if s.name == "job"}
        measures = [s for s in collector.spans if s.name == "measure"]
        assert len(measures) == len(plan)
        assert all(s.parent_id in jobs for s in measures)
        assert all(s.category == "measurement" for s in measures)

    def test_job_spans_carry_plan_indices(self):
        plan = pool_sized_plan(base_seed=2)
        _, collector = traced_run(SerialExecutor(cache=None), plan)
        indices = sorted(
            s.attributes["index"] for s in collector.spans
            if s.name == "job"
        )
        assert indices == list(range(len(plan)))


class TestParallelTracing:
    def test_span_ids_survive_the_process_pool(self):
        plan = pool_sized_plan(base_seed=3)
        _, collector = traced_run(
            ParallelExecutor(max_workers=2, cache=None), plan
        )
        by_name: dict = {}
        for span in collector.spans:
            by_name.setdefault(span.name, []).append(span)
        (map_span,) = by_name["executor.map"]
        (dispatch_span,) = by_name["executor.dispatch"]
        assert dispatch_span.parent_id == map_span.span_id
        job_spans = by_name["job"]
        assert len(job_spans) == len(plan)
        # Worker spans reconnect to the coordinator's dispatch span and
        # share one trace, even though they crossed a pickle boundary.
        assert all(s.parent_id == dispatch_span.span_id for s in job_spans)
        assert all(s.trace_id == map_span.trace_id for s in job_spans)
        assert len({s.span_id for s in collector.spans}) == len(
            collector.spans
        )

    def test_parallel_and_serial_traces_have_the_same_shape(self):
        plan = pool_sized_plan(base_seed=4)
        _, serial = traced_run(SerialExecutor(cache=None), plan)
        _, parallel = traced_run(
            ParallelExecutor(max_workers=2, cache=None), plan
        )

        def shape(collector):
            counts: dict = {}
            for span in collector.spans:
                key = (span.name, span.category)
                counts[key] = counts.get(key, 0) + 1
            return counts

        assert shape(serial) == shape(parallel)

    def test_results_identical_with_tracing_on_and_off(self):
        plan = pool_sized_plan(base_seed=5)
        executor = ParallelExecutor(max_workers=2, cache=None)
        plain = executor.run(plan)
        traced, _ = traced_run(
            ParallelExecutor(max_workers=2, cache=None), plan
        )
        assert plain.to_csv() == traced.to_csv()

    def test_untraced_parallel_records_nothing(self):
        plan = pool_sized_plan(base_seed=6)
        ParallelExecutor(max_workers=2, cache=None).run(plan)
        assert obs.current_collector() is None


class TestCacheInteraction:
    def test_cache_hits_skip_job_spans(self):
        from repro.exec import ResultCache

        cache = ResultCache()
        plan = pool_sized_plan(base_seed=7)
        SerialExecutor(cache=cache).run(plan)  # warm, untraced
        _, collector = traced_run(SerialExecutor(cache=cache), plan)
        (map_span,) = [
            s for s in collector.spans if s.name == "executor.map"
        ]
        assert map_span.attributes["cache_hits"] == len(plan)
        assert map_span.attributes["executed"] == 0
        assert not [s for s in collector.spans if s.name == "job"]

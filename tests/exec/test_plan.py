"""Unit tests for the declarative plan layer (repro.exec.plan)."""

import dataclasses

import pytest

from repro.core.benchmarks import (
    LoopBenchmark,
    NullBenchmark,
    StridedLoadBenchmark,
)
from repro.core.compiler import OptLevel
from repro.core.config import MeasurementConfig, Mode, Pattern
from repro.core.microsuite import (
    BranchPatternBenchmark,
    DependencyChainBenchmark,
)
from repro.core.sweep import SweepSpec, config_seed, iter_configs
from repro.cpu.events import Event
from repro.errors import ConfigurationError
from repro.exec.plan import (
    LOOP_RESULT_FIELDS,
    SWEEP_RESULT_FIELDS,
    BenchmarkSpec,
    LoopSweepSpec,
    MeasurementJob,
    MeasurementPlan,
    sweep_plan,
)


def tiny_spec(**kwargs) -> SweepSpec:
    defaults = dict(
        processors=("CD",),
        infras=("pm", "pc"),
        patterns=(Pattern.START_READ,),
        modes=(Mode.USER,),
        opt_levels=(OptLevel.O2,),
        repeats=2,
        io_interrupts=False,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestBenchmarkSpec:
    def test_builds_the_right_types(self):
        assert isinstance(BenchmarkSpec.null().build(), NullBenchmark)
        assert isinstance(BenchmarkSpec.loop(100).build(), LoopBenchmark)
        assert isinstance(
            BenchmarkSpec.strided(1000).build(), StridedLoadBenchmark
        )
        assert isinstance(
            BenchmarkSpec.chain(10).build(), DependencyChainBenchmark
        )
        assert isinstance(
            BenchmarkSpec.branches(10).build(), BranchPatternBenchmark
        )

    def test_build_args_forwarded(self):
        loop = BenchmarkSpec.loop(25_000).build()
        assert loop.iterations == 25_000
        strided = BenchmarkSpec.strided(4096, stride_bytes=16).build()
        assert strided.stride_bytes == 16

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            BenchmarkSpec("bogus")

    def test_identity_is_stable_and_distinct(self):
        assert BenchmarkSpec.loop(100).identity == "loop(100)"
        assert BenchmarkSpec.null().identity == "null()"
        assert (
            BenchmarkSpec.strided(10, 4).identity
            != BenchmarkSpec.strided(10, 8).identity
        )

    def test_build_is_memoized_per_spec(self):
        assert BenchmarkSpec.loop(77_777).build() is BenchmarkSpec.loop(
            77_777
        ).build()


class TestMeasurementJob:
    def make(self, seed=1, benchmark=None, tags=()):
        return MeasurementJob(
            config=MeasurementConfig(
                processor="CD", infra="pm", pattern=Pattern.START_READ,
                mode=Mode.USER, seed=seed, io_interrupts=False,
            ),
            benchmark=benchmark or BenchmarkSpec.null(),
            tags=tags,
        )

    def test_execute_returns_measurement_result(self):
        result = self.make().execute()
        assert result.measured >= result.expected

    def test_token_ignores_tags(self):
        """Identical measurements planned by different figures share a
        cache entry no matter how each figure labels its rows."""
        a = self.make(tags=(("figure", 7),))
        b = self.make(tags=(("figure", 9), ("size", 1)))
        assert a.cache_token() == b.cache_token()

    def test_token_sensitive_to_seed_and_benchmark(self):
        base = self.make()
        assert base.cache_token() != self.make(seed=2).cache_token()
        assert (
            base.cache_token()
            != self.make(benchmark=BenchmarkSpec.loop(10)).cache_token()
        )

    def test_token_is_computed_once(self):
        """The memo is safe because the dataclass really is frozen:
        any mutation that could invalidate the token raises."""
        job = self.make()
        first = job.cache_token()
        assert job.cache_token() is first
        with pytest.raises(dataclasses.FrozenInstanceError):
            job.config = MeasurementConfig(seed=99)
        with pytest.raises(dataclasses.FrozenInstanceError):
            job.benchmark = BenchmarkSpec.loop(10)


class TestMeasurementPlan:
    def test_default_row_is_tags_plus_result_fields(self):
        job = MeasurementJob(
            config=MeasurementConfig(
                processor="CD", infra="pm", pattern=Pattern.START_READ,
                mode=Mode.USER, seed=3, io_interrupts=False,
            ),
            tags=(("size", 1),),
        )
        plan = MeasurementPlan(jobs=(job,))
        table = plan.table([job.execute()])
        assert tuple(table.column_names) == (
            "size", "measured", "expected", "error", "address",
        )

    def test_unknown_result_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown result"):
            MeasurementPlan(jobs=(), result_fields=("bogus",))

    def test_plan_token_is_computed_once_and_frozen(self):
        job = MeasurementJob(
            config=MeasurementConfig(
                processor="CD", infra="pm", pattern=Pattern.START_READ,
                mode=Mode.USER, seed=3, io_interrupts=False,
            ),
        )
        plan = MeasurementPlan(jobs=(job,))
        first = plan.cache_token()
        assert plan.cache_token() is first
        # Equal plans still agree after memoization (the memo is
        # per-instance, the token content-addressed).
        assert MeasurementPlan(jobs=(job,)).cache_token() == first
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.jobs = ()

    def test_result_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="results for"):
            MeasurementPlan(jobs=()).table([object()])

    def test_concat_preserves_order(self):
        plans = [sweep_plan(tiny_spec(base_seed=s)) for s in (0, 1)]
        joined = MeasurementPlan.concat(plans)
        assert len(joined) == sum(len(p) for p in plans)
        assert joined.jobs[: len(plans[0])] == plans[0].jobs

    def test_concat_rejects_mixed_recipes(self):
        a = MeasurementPlan(jobs=(), result_fields=("error",))
        b = MeasurementPlan(jobs=(), result_fields=("measured",))
        with pytest.raises(ConfigurationError, match="row recipes"):
            MeasurementPlan.concat([a, b])


class TestSweepPlan:
    def test_one_job_per_valid_config(self):
        spec = tiny_spec()
        plan = spec.plan()
        configs = list(iter_configs(spec))
        assert len(plan) == len(configs)
        assert [job.config for job in plan] == configs

    def test_schema_matches_run_sweep(self):
        plan = tiny_spec().plan()
        assert plan.result_fields == SWEEP_RESULT_FIELDS
        tags = dict(plan.jobs[0].tags)
        assert set(tags) == {
            "processor", "infra", "pattern", "mode", "opt",
            "n_counters", "tsc", "seed",
        }

    def test_custom_benchmark_applies_to_every_job(self):
        plan = tiny_spec().plan(BenchmarkSpec.loop(100))
        assert {job.benchmark for job in plan} == {BenchmarkSpec.loop(100)}


class TestLoopSweepSpec:
    def test_enumeration_and_seed_derivation(self):
        """Jobs enumerate (processor, infra, opt, size, repeat) with the
        documented seed derivation — the historical loop_error_rows
        order, which all calibrated anchors assume."""
        spec = LoopSweepSpec(
            processors=("CD", "K8"), infras=("pm",), mode=Mode.USER,
            sizes=(1, 100), repeats=2, base_seed=5,
        )
        plan = spec.plan()
        expected = [
            (processor, size, repeat)
            for processor in ("CD", "K8")
            for size in (1, 100)
            for repeat in range(2)
        ]
        got = [
            (dict(j.tags)["processor"], dict(j.tags)["size"],
             dict(j.tags)["repeat"])
            for j in plan
        ]
        assert got == expected
        first = plan.jobs[0]
        assert first.config.seed == config_seed(
            5, "CD", "pm", "user", OptLevel.O2.value, 1, 0,
            Event.INSTR_RETIRED.value,
        )
        assert first.benchmark == BenchmarkSpec.loop(1)

    def test_result_fields(self):
        spec = LoopSweepSpec(
            processors=("CD",), infras=("pm",), mode=Mode.USER,
            sizes=(1,), repeats=1,
        )
        assert spec.plan().result_fields == LOOP_RESULT_FIELDS

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ConfigurationError, match="repeats"):
            LoopSweepSpec(
                processors=("CD",), infras=("pm",), mode=Mode.USER,
                repeats=0,
            )

"""Unit tests for repro.cpu.core — the execution engine."""

import numpy as np
import pytest

from repro.cpu.core import Core
from repro.cpu.events import Event, PrivFilter, PrivLevel
from repro.cpu.pmu import CounterConfig
from repro.cpu.models import microarch
from repro.errors import PrivilegeError
from repro.isa.block import Chunk, Loop
from repro.isa.work import WorkVector


def make_core(key: str = "CD", seed: int = 0) -> Core:
    core = Core(microarch(key), np.random.default_rng(seed))
    core.loop_warmup_cycles = 0.0
    return core


def arm_instr_counter(core: Core, priv: PrivFilter = PrivFilter.ALL) -> None:
    core.pmu.program(0, CounterConfig(Event.INSTR_RETIRED, priv, True))


class TestRetirement:
    def test_retire_counts_in_current_mode(self):
        core = make_core()
        arm_instr_counter(core, PrivFilter.OS)
        core.mode = PrivLevel.KERNEL
        core.retire(WorkVector(instructions=10))
        assert core.pmu.read(0) == 10

    def test_mode_filter_respected(self):
        core = make_core()
        arm_instr_counter(core, PrivFilter.USR)
        core.mode = PrivLevel.KERNEL
        core.retire(WorkVector(instructions=10))
        assert core.pmu.read(0) == 0

    def test_tsc_always_advances(self):
        core = make_core()
        before = core.pmu.read_tsc()
        core.retire(WorkVector(instructions=100))
        assert core.pmu.read_tsc() > before

    def test_cycles_event_charged(self):
        core = make_core()
        core.pmu.program(0, CounterConfig(Event.CYCLES, PrivFilter.ALL, True))
        core.retire(WorkVector(instructions=30))
        assert core.pmu.read(0) == pytest.approx(core.cycle, abs=1)

    def test_wall_clock_tracks_frequency(self):
        core = make_core("CD")  # 2.4 GHz
        core.retire(WorkVector.zero(), cycles=2.4e9)
        assert core.wall_s == pytest.approx(1.0)

    def test_zero_work_is_free(self):
        core = make_core()
        core.retire(WorkVector.zero())
        assert core.cycle == 0.0


class TestLoops:
    def test_loop_instruction_count_exact(self):
        core = make_core()
        core.mode = PrivLevel.USER
        arm_instr_counter(core)
        body = Chunk(WorkVector(instructions=3, branches=1, taken_branches=1),
                     size_bytes=10)
        header = Chunk(WorkVector(instructions=1), size_bytes=5)
        core.execute_loop(Loop(body=body, trips=12345, header=header), 0x8048000)
        assert core.pmu.read(0) == 1 + 3 * 12345

    def test_billion_iterations_fast_and_exact(self):
        core = make_core()
        arm_instr_counter(core)
        body = Chunk(WorkVector(instructions=3, branches=1, taken_branches=1),
                     size_bytes=10)
        core.execute_loop(Loop(body=body, trips=1_000_000_000), 0x8048000)
        assert core.pmu.read(0) == 3_000_000_000

    def test_cycles_proportional_to_trips(self):
        core = make_core("K8")
        body = Chunk(WorkVector(instructions=3, branches=1, taken_branches=1),
                     size_bytes=10)
        core.execute_loop(Loop(body=body, trips=1000), 0x8048000)
        first = core.cycle
        core.execute_loop(Loop(body=body, trips=2000), 0x8048000)
        assert core.cycle - first == pytest.approx(2 * first, rel=0.01)

    def test_warmup_adds_cycles_not_instructions(self):
        core = make_core()
        core.loop_warmup_cycles = 100.0
        arm_instr_counter(core)
        body = Chunk(WorkVector(instructions=3), size_bytes=10)
        core.execute_loop(Loop(body=body, trips=10), 0x8048000)
        assert core.pmu.read(0) == 30
        assert core.cycle > 0


class TestCounterInstructions:
    def test_rdtsc_counts_as_one_instruction(self):
        core = make_core()
        arm_instr_counter(core)
        core.rdtsc()
        assert core.pmu.read(0) == 1

    def test_rdpmc_requires_pce_in_user_mode(self):
        core = make_core()
        core.mode = PrivLevel.USER
        with pytest.raises(PrivilegeError, match="RDPMC"):
            core.rdpmc(0)

    def test_rdpmc_with_pce(self):
        core = make_core()
        core.mode = PrivLevel.USER
        core.user_rdpmc_enabled = True
        arm_instr_counter(core)
        core.rdpmc(0)  # the read itself retires and is counted

    def test_rdpmc_allowed_in_kernel(self):
        core = make_core()
        core.mode = PrivLevel.KERNEL
        core.rdpmc(0)

    @pytest.mark.parametrize("op", ["rdmsr", "wrmsr"])
    def test_msr_access_faults_in_user_mode(self, op):
        core = make_core()
        core.mode = PrivLevel.USER
        with pytest.raises(PrivilegeError, match="#GP"):
            if op == "rdmsr":
                core.rdmsr(0x10)
            else:
                core.wrmsr(0x10, 0)

    def test_wrmsr_serializes(self):
        core = make_core()
        before = core.cycle
        core.wrmsr(0x10, 0)
        assert core.cycle - before >= core.timing.serialize_cost


class TestModeHelpers:
    def test_kernel_mode_context_restores(self):
        core = make_core()
        core.mode = PrivLevel.USER
        with core.kernel_mode():
            assert core.mode is PrivLevel.KERNEL
        assert core.mode is PrivLevel.USER

    def test_masked_interrupts_restores(self):
        core = make_core()
        with core.masked_interrupts():
            assert core.interrupts_masked
        assert not core.interrupts_masked


class TestSkid:
    def test_skid_disabled_by_default(self):
        core = make_core()
        arm_instr_counter(core, PrivFilter.USR)
        for _ in range(100):
            core.apply_interrupt_skid()
        assert core.pmu.read(0) == 0

    def test_positive_bias_drifts_up(self):
        core = make_core(seed=7)
        core.skid_probability = 1.0
        core.skid_bias = 1.0
        arm_instr_counter(core, PrivFilter.USR)
        core.pmu.write(0, 1000)
        for _ in range(50):
            core.apply_interrupt_skid()
        assert core.pmu.read(0) == 1050

    def test_negative_bias_drifts_down(self):
        core = make_core(seed=7)
        core.skid_probability = 1.0
        core.skid_bias = -1.0
        arm_instr_counter(core, PrivFilter.USR)
        core.pmu.write(0, 1000)
        for _ in range(50):
            core.apply_interrupt_skid()
        assert core.pmu.read(0) == 950

"""Stateful property test of the PMU against a reference model.

Hypothesis drives random sequences of PMU operations (program, enable,
disable, write, count at either privilege level, snapshot/restore) and
checks the hardware model against a trivially correct shadow
implementation after every step.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.cpu.events import Event, PrivFilter, PrivLevel
from repro.cpu.pmu import CounterConfig, Pmu

WIDTH = 24  # small width so overflow paths are exercised
LIMIT = 1 << WIDTH
N = 3

events = st.sampled_from([Event.INSTR_RETIRED, Event.CYCLES,
                          Event.BRANCHES_RETIRED])
privs = st.sampled_from([PrivFilter.USR, PrivFilter.OS, PrivFilter.ALL])
levels = st.sampled_from([PrivLevel.USER, PrivLevel.KERNEL])
indices = st.integers(0, N - 1)
amounts = st.integers(1, LIMIT // 2)


class PmuMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.pmu = Pmu(n_programmable=N, counter_width=WIDTH)
        # Shadow: per-counter (config, value) mirror.
        self.shadow_config: list[CounterConfig | None] = [None] * N
        self.shadow_value: list[int] = [0] * N
        self.saved: list[tuple] = []

    snapshots = Bundle("snapshots")

    @rule(index=indices, event=events, priv=privs,
          enabled=st.booleans())
    def program(self, index, event, priv, enabled):
        config = CounterConfig(event, priv, enabled)
        self.pmu.program(index, config)
        self.shadow_config[index] = config

    @rule(index=indices)
    def disable(self, index):
        self.pmu.disable(index)
        if self.shadow_config[index] is not None:
            from dataclasses import replace

            self.shadow_config[index] = replace(
                self.shadow_config[index], enabled=False
            )

    @rule(index=indices, value=st.integers(0, LIMIT - 1))
    def write(self, index, value):
        self.pmu.write(index, value)
        self.shadow_value[index] = value

    @rule(event=events, amount=amounts, level=levels)
    def count(self, event, amount, level):
        self.pmu.count({event: amount}, level)
        for index in range(N):
            config = self.shadow_config[index]
            if (
                config is not None
                and config.enabled
                and config.event is event
                and config.priv.matches(level)
            ):
                self.shadow_value[index] = (
                    self.shadow_value[index] + amount
                ) % LIMIT

    @rule(target=snapshots)
    def snapshot(self):
        state = self.pmu.snapshot()
        mirror = (list(self.shadow_config), list(self.shadow_value))
        return (state, mirror)

    @rule(snap=snapshots)
    def restore(self, snap):
        state, (configs, values) = snap
        self.pmu.restore(state)
        self.shadow_config = list(configs)
        self.shadow_value = list(values)

    @invariant()
    def hardware_matches_shadow(self):
        for index in range(N):
            assert self.pmu.read(index) == self.shadow_value[index], (
                f"counter {index}: hw={self.pmu.read(index)} "
                f"shadow={self.shadow_value[index]}"
            )


TestPmuStateful = PmuMachine.TestCase

"""Unit tests for repro.cpu.timing and repro.cpu.frequency."""

import numpy as np
import pytest

from repro.cpu.branch import BranchPlacementModel
from repro.cpu.fetch import FetchPlacementModel
from repro.cpu.frequency import FrequencyPolicy, Governor
from repro.cpu.models import microarch
from repro.cpu.timing import TimingModel
from repro.errors import ConfigurationError
from repro.isa.block import Chunk
from repro.isa.work import WorkVector


def flat_timing(loop_cpi: float = 2.0) -> TimingModel:
    return TimingModel(
        issue_width=2.0,
        taken_branch_cost=1.0,
        load_cost=0.5,
        store_cost=0.5,
        serialize_cost=30.0,
        loop_base_cpi=loop_cpi,
        branch_model=BranchPlacementModel(alias_penalties=(0.0,)),
        fetch_model=FetchPlacementModel(bubble_cycles=0.0),
    )


class TestStraightLine:
    def test_issue_width_floor(self):
        timing = flat_timing()
        assert timing.cycles_for_work(WorkVector(instructions=10)) == 5.0

    def test_penalties_add(self):
        timing = flat_timing()
        work = WorkVector(
            instructions=10, branches=2, taken_branches=2, loads=2, serializing=1
        )
        # 10/2 + 2*1.0 + 2*0.5 + 1*30
        assert timing.cycles_for_work(work) == 5 + 2 + 1 + 30

    def test_zero_work_zero_cycles(self):
        assert flat_timing().cycles_for_work(WorkVector.zero()) == 0.0

    def test_invalid_issue_width(self):
        with pytest.raises(ConfigurationError, match="issue_width"):
            TimingModel(
                issue_width=0,
                taken_branch_cost=0,
                load_cost=0,
                store_cost=0,
                serialize_cost=0,
                loop_base_cpi=1,
                branch_model=BranchPlacementModel(),
                fetch_model=FetchPlacementModel(),
            )


class TestLoopCpi:
    def test_base_cpi_without_placement(self):
        timing = flat_timing(loop_cpi=2.0)
        body = Chunk(WorkVector(instructions=3, branches=1, taken_branches=1))
        assert timing.loop_cycles_per_iteration(body, 0x8048000) == 2.0

    def test_k8_cpi_is_two_or_three(self):
        # Figure 11: K8 loops run at c=2i or c=3i depending on placement.
        timing = microarch("K8").make_timing()
        body = Chunk(
            WorkVector(instructions=3, branches=1, taken_branches=1),
            size_bytes=10,
        )
        cpis = {
            timing.loop_cycles_per_iteration(body, 0x8048000 + 16 * i)
            for i in range(512)
        }
        assert cpis == {2.0, 3.0}

    def test_pd_spread_is_wide(self):
        # Figure 10: PD cycles vary ~1.5x-4x per iteration.
        timing = microarch("PD").make_timing()
        body = Chunk(
            WorkVector(instructions=3, branches=1, taken_branches=1),
            size_bytes=10,
        )
        cpis = [
            timing.loop_cycles_per_iteration(body, 0x8048000 + 8 * i)
            for i in range(1024)
        ]
        assert min(cpis) == 1.5
        assert max(cpis) >= 3.5


class TestFrequencyPolicy:
    def test_performance_pins_max(self):
        policy = FrequencyPolicy((1e9, 2e9, 3e9), Governor.PERFORMANCE)
        assert policy.current_hz == 3e9

    def test_powersave_pins_min(self):
        policy = FrequencyPolicy((1e9, 2e9), Governor.POWERSAVE)
        assert policy.current_hz == 1e9

    def test_userspace_requires_valid_state(self):
        with pytest.raises(ConfigurationError, match="userspace"):
            FrequencyPolicy((1e9, 2e9), Governor.USERSPACE, userspace_hz=5e9)

    def test_userspace_pins_choice(self):
        policy = FrequencyPolicy(
            (1e9, 2e9), Governor.USERSPACE, userspace_hz=1e9
        )
        assert policy.current_hz == 1e9

    def test_performance_never_moves(self):
        rng = np.random.default_rng(0)
        policy = FrequencyPolicy((1e9, 3e9), Governor.PERFORMANCE)
        for _ in range(100):
            assert not policy.on_decision_point(rng)
        assert policy.current_hz == 3e9

    def test_ondemand_wanders(self):
        rng = np.random.default_rng(0)
        policy = FrequencyPolicy(
            (1e9, 2e9, 3e9), Governor.ONDEMAND, switch_probability=0.5
        )
        seen = {policy.current_hz}
        for _ in range(200):
            policy.on_decision_point(rng)
            seen.add(policy.current_hz)
        assert len(seen) == 3

    def test_states_must_ascend(self):
        with pytest.raises(ConfigurationError, match="ascending"):
            FrequencyPolicy((2e9, 1e9))

    def test_needs_a_state(self):
        with pytest.raises(ConfigurationError, match="P-state"):
            FrequencyPolicy(())

"""The symbolic fast-forward engine: bit-exact or bailed out.

Every test here enforces the engine's one contract: an engaged replay
produces *exactly* the machine state the slow path would have — clocks,
counters, interrupt bookkeeping, and the RNG stream position — and any
observation it cannot replay symbolically bails to the slow path with
an accounted reason, never with drift.
"""

import random

import pytest

from repro.cpu import fastforward
from repro.cpu.events import Event, PrivFilter
from repro.cpu.frequency import Governor
from repro.cpu.pmu import CounterConfig
from repro.errors import ConfigurationError
from repro.isa.block import Chunk, Loop
from repro.isa.work import WorkVector
from repro.kernel import snapshot
from repro.kernel.system import Machine


@pytest.fixture(autouse=True)
def clean_engine():
    fastforward.reset_fastforward()
    yield
    fastforward.reset_fastforward()


def make_loop(trips: int, instructions: int = 3, label: str = "ff-loop"):
    body = Chunk(
        work=WorkVector(instructions=instructions, branches=1,
                        taken_branches=1, loads=1),
        label="body",
    )
    header = Chunk(work=WorkVector(instructions=2), label="header")
    return Loop(body=body, trips=trips, header=header, label=label)


def boot(
    mode: str,
    seed: int = 0,
    warmup: int = 64,
    processor: str = "CD",
    kernel: str = "perfctr",
    **kwargs,
) -> Machine:
    fastforward.configure_fastforward(mode, warmup=warmup)
    machine = Machine(
        processor=processor, kernel=kernel, seed=seed, **kwargs
    )
    pmu = machine.core.pmu
    pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR,
                                 enabled=True))
    pmu.program(1, CounterConfig(Event.CYCLES, PrivFilter.ALL,
                                 enabled=True))
    if pmu.fixed:
        pmu.configure_fixed(0, PrivFilter.ALL)
    return machine


def state(machine: Machine) -> dict:
    """Everything an engagement touches, hex-exact."""
    core = machine.core
    ctl = machine.controller
    return {
        "cycle": core.cycle.hex(),
        "wall": core.wall_s.hex(),
        "tsc": core.pmu._tsc.hex(),
        "pc": [c._value.hex() for c in core.pmu.counters],
        "fx": [f._value.hex() for f in core.pmu.fixed],
        "next_t": ctl.next_timer_s.hex(),
        "ticks": ctl.ticks_delivered,
        "io": ctl.io_delivered,
        "nio": None if ctl.next_io_s is None else ctl.next_io_s.hex(),
        "tiq": machine.scheduler._ticks_in_quantum,
        "rng": str(machine.rng.bit_generator.state),
    }


# -- knob parsing ------------------------------------------------------------


class TestKnobParsing:
    @pytest.mark.parametrize("raw,expected", [
        ("auto", "auto"), ("ON", "on"), (" off ", "off"),
    ])
    def test_valid_modes_normalize(self, raw, expected):
        assert fastforward.parse_ff_mode(raw) == expected

    @pytest.mark.parametrize("raw", ["bogus", "", "1", "o n"])
    def test_bad_mode_is_configuration_error(self, raw):
        with pytest.raises(ConfigurationError, match="fast-forward mode"):
            fastforward.parse_ff_mode(raw)

    @pytest.mark.parametrize("raw,expected", [("1", 1), (64, 64), ("500", 500)])
    def test_valid_warmups(self, raw, expected):
        assert fastforward.parse_ff_warmup(raw) == expected

    @pytest.mark.parametrize("raw", ["0", "-3", "many", "", None, "1.5"])
    def test_bad_warmup_is_configuration_error(self, raw):
        with pytest.raises(ConfigurationError, match="fast-forward warmup"):
            fastforward.parse_ff_warmup(raw)

    def test_off_builds_no_engine(self):
        assert fastforward.configure_fastforward("off") is None

    def test_on_lowers_the_trip_floor(self):
        engine = fastforward.configure_fastforward("on")
        assert engine.min_trips == 1
        engine = fastforward.configure_fastforward("auto")
        assert engine.min_trips == fastforward.AUTO_MIN_TRIPS

    def test_default_engine_reads_env_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_FF", "off")
        fastforward.reset_fastforward()
        assert fastforward.default_engine() is None
        # Read-once: flipping the env after first use changes nothing.
        monkeypatch.setenv("REPRO_FF", "on")
        assert fastforward.default_engine() is None

    def test_default_engine_env_warmup(self, monkeypatch):
        monkeypatch.setenv("REPRO_FF", "on")
        monkeypatch.setenv("REPRO_FF_WARMUP", "7")
        fastforward.reset_fastforward()
        engine = fastforward.default_engine()
        assert engine.warmup == 7

    def test_default_engine_rejects_malformed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FF", "warp9")
        fastforward.reset_fastforward()
        with pytest.raises(ConfigurationError, match="fast-forward mode"):
            fastforward.default_engine()


# -- bit-exactness -----------------------------------------------------------


class TestBitExactness:
    @pytest.mark.parametrize("processor,kernel", [
        ("CD", "perfctr"), ("PD", "perfmon"), ("K8", "vanilla"),
    ])
    def test_single_call_matches_slow_path(self, processor, kernel):
        loop = make_loop(50_000)
        slow = boot("off", seed=3, processor=processor, kernel=kernel)
        for _ in range(3):
            slow.core.execute_loop(loop, 4096)
        fast = boot("on", seed=3, processor=processor, kernel=kernel)
        for _ in range(3):
            fast.core.execute_loop(loop, 4096)
        assert state(slow) == state(fast)
        assert fastforward.GLOBAL_STATS.engagements > 0

    def test_no_io_machine_matches(self):
        loop = make_loop(80_000)
        slow = boot("off", seed=5, io_interrupts=False)
        slow.core.execute_loop(loop, 4096)
        fast = boot("on", seed=5, io_interrupts=False)
        fast.core.execute_loop(loop, 4096)
        assert state(slow) == state(fast)

    def test_sweep_matches_repeated_calls(self):
        loop = make_loop(20_000)
        slow = boot("off", seed=1)
        for _ in range(25):
            slow.core.execute_loop(loop, 4096)
        fast = boot("on", seed=1)
        fast.core.execute_loop_sweep(loop, 4096, 25)
        assert state(slow) == state(fast)

    def test_sweep_with_engine_off_matches_repeated_calls(self):
        loop = make_loop(5_000)
        serial = boot("off", seed=9)
        for _ in range(10):
            serial.core.execute_loop(loop, 4096)
        swept = boot("off", seed=9)
        swept.core.execute_loop_sweep(loop, 4096, 10)
        assert state(serial) == state(swept)

    def test_randomized_differential_200_seeds(self):
        """200 randomized placements: the engine never moves a bit."""
        rng = random.Random(0xF0F0)
        flavors = [("CD", "perfctr"), ("PD", "perfmon"), ("K8", "vanilla")]
        mismatches = []
        for seed in range(200):
            processor, kernel = flavors[seed % len(flavors)]
            trips = rng.randrange(1_000, 4_000)
            instructions = rng.randrange(1, 6)
            io = rng.random() < 0.7
            repeats = rng.randrange(1, 4)
            loop = make_loop(trips, instructions=instructions)
            slow = boot("off", seed=seed, processor=processor,
                        kernel=kernel, io_interrupts=io)
            for _ in range(repeats):
                slow.core.execute_loop(loop, 4096)
            fast = boot("on", seed=seed, warmup=1, processor=processor,
                        kernel=kernel, io_interrupts=io)
            for _ in range(repeats):
                fast.core.execute_loop(loop, 4096)
            if state(slow) != state(fast):
                mismatches.append((seed, processor, kernel, trips))
        assert not mismatches, f"state drift at {mismatches[:5]}"


# -- engagement gating -------------------------------------------------------


class TestEngagementGating:
    def test_auto_skips_short_loops(self):
        loop = make_loop(fastforward.AUTO_MIN_TRIPS - 1)
        machine = boot("auto", warmup=1)
        for _ in range(5):
            machine.core.execute_loop(loop, 4096)
        assert fastforward.GLOBAL_STATS.engagements == 0

    def test_on_engages_short_loops(self):
        loop = make_loop(200)
        machine = boot("on", warmup=1)
        machine.core.execute_loop(loop, 4096)
        machine.core.execute_loop(loop, 4096)
        assert fastforward.GLOBAL_STATS.engagements > 0

    def test_warmup_counts_observed_iterations(self):
        loop = make_loop(2_000)
        machine = boot("on", warmup=10_000)
        for _ in range(5):  # 5 x 2000 observed == warmup, all slow
            machine.core.execute_loop(loop, 4096)
        assert fastforward.GLOBAL_STATS.engagements == 0
        machine.core.execute_loop(loop, 4096)  # now warmed
        assert fastforward.GLOBAL_STATS.engagements == 1

    def test_warmed_model_is_shared_across_boots(self):
        loop = make_loop(2_000)
        first = boot("on", seed=2, warmup=1_500)
        first.core.execute_loop(loop, 4096)  # warms the shared model
        assert fastforward.GLOBAL_STATS.engagements == 0
        # A second boot attaches to the same configured engine; its
        # counters are programmed identically, so the warmed model and
        # compiled template are reused as-is.
        second = Machine(processor="CD", kernel="perfctr", seed=2)
        pmu = second.core.pmu
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR,
                                     enabled=True))
        pmu.program(1, CounterConfig(Event.CYCLES, PrivFilter.ALL,
                                     enabled=True))
        pmu.configure_fixed(0, PrivFilter.ALL)
        second.core.execute_loop(loop, 4096)
        assert fastforward.GLOBAL_STATS.engagements == 1

    def test_reprogramming_counters_stays_exact(self):
        """A PMU epoch bump invalidates the plan, not the output."""
        loop = make_loop(30_000)

        def drive(machine):
            machine.core.execute_loop(loop, 4096)  # warms the model
            machine.core.execute_loop(loop, 4096)  # first engagement
            machine.core.pmu.program(
                1, CounterConfig(Event.DCACHE_MISSES, PrivFilter.ALL,
                                 enabled=True)
            )
            machine.core.execute_loop(loop, 4096)  # replanned engagement

        slow = boot("off", seed=4)
        drive(slow)
        fast = boot("on", seed=4)
        drive(fast)
        assert state(slow) == state(fast)
        assert fastforward.GLOBAL_STATS.engagements >= 2


# -- bailouts ----------------------------------------------------------------


def engaged_then(reason: str) -> int:
    return fastforward.GLOBAL_STATS.bailouts.get(reason, 0)


class TestBailouts:
    """Each unplayable observation bails with its accounted reason —
    and the run that bailed still matches the slow path exactly."""

    def check_bail(self, reason, mutate, *, expect_engagements=0, **boot_kw):
        loop = make_loop(40_000)
        slow = boot("off", seed=6, **boot_kw)
        mutate(slow)
        slow.core.execute_loop(loop, 4096)  # (warmup mirror)
        slow.core.execute_loop(loop, 4096)
        fast = boot("on", seed=6, warmup=1, **boot_kw)
        mutate(fast)
        fast.core.execute_loop(loop, 4096)  # warms the model, runs slow
        fast.core.execute_loop(loop, 4096)  # would engage; must bail
        assert state(slow) == state(fast)
        assert engaged_then(reason) >= 1
        assert fastforward.GLOBAL_STATS.engagements == expect_engagements
        assert fastforward.GLOBAL_STATS.bailouts_total >= 1

    def test_governor_bails(self):
        self.check_bail("governor", lambda m: None,
                        governor=Governor.ONDEMAND)

    def test_masked_interrupts_bail(self):
        def mask(machine):
            machine.core.interrupts_masked = True
        self.check_bail("masked", mask)

    def test_tracer_bails(self):
        from repro.trace import Tracer

        self.check_bail(
            "tracer", lambda m: setattr(m.core, "tracer", Tracer())
        )

    def test_sampling_counter_bails(self):
        def sample(machine):
            machine.core.pmu.program(
                0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR,
                                 enabled=True, interrupt_on_overflow=True)
            )
        self.check_bail("sampling", sample)

    def test_multithread_bails(self):
        def threads(machine):
            machine.scheduler.spawn("a")
            machine.scheduler.spawn("b")
        self.check_bail("multithread", threads)

    def test_nonstock_controller_bails(self):
        def subclass(machine):
            ctl = machine.controller
            ctl.__class__ = type("TweakedCtl", (type(ctl),), {})
        self.check_bail("nonstock", subclass)

    def test_tsc_skew_bails(self):
        def skew(machine):
            machine.core.pmu._tsc = machine.core.pmu._tsc + 1.0
        self.check_bail("tsc-skew", skew)

    def test_aperiodic_cpi_rewarm(self):
        """A poisoned CPI memo restarts the warmup, bit-exactly."""
        loop = make_loop(40_000)
        body_address = 4096 + loop.header.size_bytes

        def drive(machine):
            machine.core.execute_loop(loop, 4096)
            memo = machine.core._loop_cpi_memo
            key = (loop.body, body_address)
            if key in memo:
                memo[key] = memo[key] + 1.0
            machine.core.execute_loop(loop, 4096)

        slow = boot("off", seed=8)
        drive(slow)
        fast = boot("on", seed=8, warmup=1)
        drive(fast)
        assert state(slow) == state(fast)
        assert engaged_then("aperiodic") >= 1

    def test_wrap_risk_bails_single_call(self):
        loop = make_loop(40_000)

        def park_near_wrap(machine):
            counter = machine.core.pmu.counters[0]
            counter._value = float(counter.limit - 16)

        slow = boot("off", seed=7)
        slow.core.execute_loop(loop, 4096)
        fast = boot("on", seed=7, warmup=1)
        fast.core.execute_loop(loop, 4096)  # warms the model
        # Park AFTER warming, so the engaging call sees the hot counter.
        park_near_wrap(slow)
        park_near_wrap(fast)
        slow.core.execute_loop(loop, 4096)
        fast.core.execute_loop(loop, 4096)
        assert state(slow) == state(fast)
        assert engaged_then("wrap-risk") >= 1

    def test_sweep_wrap_prefix_is_exact(self):
        """A sweep near a wrap boundary replays a safe prefix and
        finishes slowly — byte-identical to the all-slow run."""
        loop = make_loop(10_000)

        def park(machine):
            counter = machine.core.pmu.counters[0]
            # Room for only a few executions before the wrap.
            counter._value = float(counter.limit - 45_000)

        slow = boot("off", seed=2)
        park(slow)
        for _ in range(12):
            slow.core.execute_loop(loop, 4096)
        fast = boot("on", seed=2, warmup=1)
        park(fast)
        fast.core.execute_loop_sweep(loop, 4096, 12)
        assert state(slow) == state(fast)

    def test_io_burst_limit_bails_and_stays_exact(self):
        # Pull the next I/O deadline right up to the wall clock on both
        # machines, so the engagement crosses it immediately; with the
        # burst limit forced to zero, the first excursion bails.
        loop = make_loop(1_000_000)

        def imminent_io(machine):
            machine.controller.next_io_s = machine.core.wall_s + 1e-4

        slow = boot("off", seed=3)
        imminent_io(slow)
        for _ in range(8):
            slow.core.execute_loop(loop, 4096)
        fast = boot("on", seed=3, warmup=1)
        imminent_io(fast)
        engine = fast.core._ff_engine
        engine.io_burst_limit = 0
        fast.core.execute_loop_sweep(loop, 4096, 8)
        assert state(slow) == state(fast)
        assert engaged_then("io-burst") >= 1
        # A bailed engagement still skips the symbolic prefix it ran.
        assert fastforward.GLOBAL_STATS.iterations_skipped > 0


# -- snapshot-store interplay ------------------------------------------------


class TestSnapshotInterplay:
    @pytest.fixture()
    def no_snapshots(self):
        previous = snapshot._default
        snapshot.configure_default_store(enabled=False)
        yield
        snapshot._default = previous

    def test_snapshots_off_ff_on_is_byte_identical(self, no_snapshots):
        loop = make_loop(30_000)
        slow = boot("off", seed=12)
        slow.core.execute_loop(loop, 4096)
        slow.core.execute_loop(loop, 4096)
        fast = boot("on", seed=12, warmup=1)
        fast.core.execute_loop(loop, 4096)  # warms the model
        fast.core.execute_loop(loop, 4096)  # engages
        assert state(slow) == state(fast)
        assert fastforward.GLOBAL_STATS.engagements > 0

    def test_cold_and_snapshot_boots_share_ff_results(self, no_snapshots):
        loop = make_loop(30_000)
        cold = boot("on", seed=12, warmup=1)
        cold.core.execute_loop(loop, 4096)
        cold.core.execute_loop(loop, 4096)
        cold_state = state(cold)
        snapshot.configure_default_store(enabled=True)
        fastforward.reset_fastforward()
        warm = boot("on", seed=12, warmup=1)
        warm.core.execute_loop(loop, 4096)
        warm.core.execute_loop(loop, 4096)
        assert cold_state == state(warm)


# -- worker lifecycle --------------------------------------------------------


class TestWorkerState:
    def test_reset_worker_state_drops_models_and_stats(self):
        loop = make_loop(20_000)
        machine = boot("on", warmup=1)
        machine.core.execute_loop(loop, 4096)
        machine.core.execute_loop(loop, 4096)
        engine = machine.core._ff_engine
        assert engine._models and fastforward.GLOBAL_STATS.engagements > 0
        fastforward.reset_worker_state()
        assert not engine._models
        assert fastforward.GLOBAL_STATS.engagements == 0
        assert fastforward.GLOBAL_STATS.bailouts == {}

    def test_revived_worker_rederives_identical_state(self):
        """A mid-sweep revival (reset_worker_state) re-warms from its
        own observations and lands on the same bytes."""
        loop = make_loop(15_000)
        slow = boot("off", seed=14)
        for _ in range(8):
            slow.core.execute_loop(loop, 4096)
        fast = boot("on", seed=14, warmup=1)
        fast.core.execute_loop_sweep(loop, 4096, 4)
        fastforward.reset_worker_state()  # the revival
        fast.core._ff_plan = None
        fast.core.execute_loop_sweep(loop, 4096, 4)
        assert state(slow) == state(fast)
        # The post-revival sweep re-warmed, then engaged again.
        assert fastforward.GLOBAL_STATS.engagements >= 1


# -- observability -----------------------------------------------------------


class TestObservability:
    def test_metrics_registry_exports_ff_counters(self):
        from repro.obs.metrics import build_unified_registry

        loop = make_loop(20_000)
        machine = boot("on", warmup=1)
        machine.core.execute_loop(loop, 4096)
        machine.core.execute_loop(loop, 4096)
        machine.core.interrupts_masked = True
        machine.core.execute_loop(loop, 4096)
        stats = fastforward.GLOBAL_STATS
        text = build_unified_registry().render()
        assert (
            f"repro_ff_iterations_skipped_total {stats.iterations_skipped}"
            in text
        )
        assert f"repro_ff_engagements_total {stats.engagements}" in text
        assert (
            'repro_ff_bailouts_total{reason="masked"} '
            f"{stats.bailouts['masked']}" in text
        )

    def test_engagement_emits_span(self):
        from repro import obs
        from repro.obs.spans import TraceCollector

        loop = make_loop(20_000)
        machine = boot("on", warmup=1)
        machine.core.execute_loop(loop, 4096)  # warm outside the trace
        collector = TraceCollector()
        with obs.activate(collector):
            machine.core.execute_loop(loop, 4096)
        spans = [s for s in collector.spans if s.name == "engine.fastforward"]
        assert spans, "engaged run emitted no engine.fastforward span"
        attrs = spans[0].attributes
        assert attrs["iterations"] == loop.trips
        assert attrs["skipped"] == loop.trips
        assert attrs["io_burst"] is False

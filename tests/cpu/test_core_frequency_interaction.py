"""Core × frequency-policy interactions (the ondemand mechanics)."""

import numpy as np

from repro.cpu.core import Core
from repro.cpu.events import Event, PrivFilter
from repro.cpu.frequency import Governor
from repro.cpu.models import microarch
from repro.cpu.pmu import CounterConfig
from repro.isa.block import Chunk, Loop
from repro.isa.work import WorkVector
from repro.kernel.system import Machine


def memory_loop(trips: int) -> Loop:
    body = Chunk(
        WorkVector(instructions=4, branches=1, taken_branches=1, loads=1),
        size_bytes=13,
    )
    return Loop(body=body, trips=trips)


class TestMemoryCycleScaling:
    def test_slower_clock_cheaper_memory_in_cycles(self):
        """At a lower core clock, constant-time memory costs fewer
        cycles — the Section 8 frequency-scaling mechanism."""
        def cycles_at(governor: Governor) -> float:
            core = Core(
                microarch("PD"), np.random.default_rng(0), governor=governor
            )
            core.loop_warmup_cycles = 0.0
            core.execute_loop(memory_loop(100_000), 0x8048000)
            return core.cycle

        fast = cycles_at(Governor.PERFORMANCE)   # 3.0 GHz
        slow = cycles_at(Governor.POWERSAVE)     # 2.4 GHz
        assert slow < fast

    def test_pure_alu_loop_clock_invariant(self):
        """Without memory traffic, cycles per iteration do not depend
        on the clock."""
        body = Chunk(
            WorkVector(instructions=3, branches=1, taken_branches=1),
            size_bytes=10,
        )

        def cycles_at(governor: Governor) -> float:
            core = Core(
                microarch("PD"), np.random.default_rng(0), governor=governor
            )
            core.loop_warmup_cycles = 0.0
            core.execute_loop(Loop(body=body, trips=50_000), 0x8048000)
            return core.cycle

        assert cycles_at(Governor.PERFORMANCE) == cycles_at(
            Governor.POWERSAVE
        )

    def test_instruction_counts_clock_invariant(self):
        """Retired-instruction counts never depend on the governor."""
        def count_at(governor: Governor) -> int:
            machine = Machine(
                processor="PD", kernel="vanilla", seed=4,
                governor=governor, io_interrupts=False,
            )
            machine.core.skid_probability = 0.0
            machine.core.pmu.program(
                0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR, True)
            )
            machine.core.execute_loop(memory_loop(200_000), 0x8049000)
            return machine.core.pmu.read(0)

        assert count_at(Governor.PERFORMANCE) == count_at(Governor.POWERSAVE)

    def test_ondemand_retunes_only_at_ticks(self):
        machine = Machine(
            processor="PD", kernel="vanilla", seed=9,
            governor=Governor.ONDEMAND, io_interrupts=False,
        )
        start_hz = machine.core.freq.current_hz
        # No elapsed ticks: the clock cannot have moved.
        machine.core.retire(WorkVector(instructions=100))
        assert machine.core.freq.current_hz == start_hz
        # Across many ticks it (very probably) moves for this seed.
        period = machine.core.freq.current_hz / machine.build.hz
        seen = {machine.core.freq.current_hz}
        for _ in range(60):
            machine.core.retire(WorkVector.zero(), cycles=1.1 * period)
            seen.add(machine.core.freq.current_hz)
        assert len(seen) > 1

    def test_wall_time_integrates_across_frequency_changes(self):
        machine = Machine(
            processor="PD", kernel="vanilla", seed=9,
            governor=Governor.ONDEMAND, io_interrupts=False,
        )
        before = machine.core.wall_s
        machine.core.retire(WorkVector.zero(), cycles=3.0e9)
        elapsed = machine.core.wall_s - before
        # 3e9 cycles at clocks between 2.4 and 3.0 GHz: 1.0-1.25 s.
        assert 0.9 <= elapsed <= 1.3

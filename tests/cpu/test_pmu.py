"""Unit tests for repro.cpu.pmu."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.events import Event, PrivFilter, PrivLevel
from repro.cpu.pmu import CounterConfig, Pmu
from repro.errors import CounterError


def make_pmu(n: int = 2, fixed: tuple = ()) -> Pmu:
    return Pmu(n_programmable=n, fixed_events=fixed, counter_width=40)


def count_instr(pmu: Pmu, n: int, level: PrivLevel) -> None:
    pmu.count({Event.INSTR_RETIRED: n}, level)


class TestProgramming:
    def test_unprogrammed_counters_do_not_count(self):
        pmu = make_pmu()
        count_instr(pmu, 100, PrivLevel.USER)
        assert pmu.read(0) == 0

    def test_programmed_enabled_counter_counts(self):
        pmu = make_pmu()
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True))
        count_instr(pmu, 100, PrivLevel.USER)
        assert pmu.read(0) == 100

    def test_disabled_counter_does_not_count(self):
        pmu = make_pmu()
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True))
        pmu.disable(0)
        count_instr(pmu, 100, PrivLevel.USER)
        assert pmu.read(0) == 0

    def test_enable_requires_programming(self):
        with pytest.raises(CounterError, match="programmed"):
            make_pmu().enable(0)

    def test_bad_index(self):
        with pytest.raises(CounterError, match="no programmable counter"):
            make_pmu(2).read(2)

    def test_needs_at_least_one_counter(self):
        with pytest.raises(CounterError):
            Pmu(n_programmable=0)

    def test_disable_all(self):
        pmu = make_pmu()
        for i in range(2):
            pmu.program(i, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True))
        pmu.disable_all()
        count_instr(pmu, 10, PrivLevel.USER)
        assert pmu.read(0) == 0 and pmu.read(1) == 0


class TestPrivilegeFiltering:
    """Conditional counting per privilege level (paper §2.5)."""

    @pytest.mark.parametrize(
        "priv,user_counts,kernel_counts",
        [
            (PrivFilter.USR, True, False),
            (PrivFilter.OS, False, True),
            (PrivFilter.ALL, True, True),
        ],
    )
    def test_filter_behaviour(self, priv, user_counts, kernel_counts):
        pmu = make_pmu()
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, priv, True))
        count_instr(pmu, 7, PrivLevel.USER)
        count_instr(pmu, 11, PrivLevel.KERNEL)
        expected = (7 if user_counts else 0) + (11 if kernel_counts else 0)
        assert pmu.read(0) == expected

    def test_user_count_never_exceeds_all_count(self):
        pmu = make_pmu(2)
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR, True))
        pmu.program(1, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True))
        count_instr(pmu, 5, PrivLevel.USER)
        count_instr(pmu, 9, PrivLevel.KERNEL)
        assert pmu.read(0) <= pmu.read(1)


class TestEventSelection:
    def test_counter_counts_only_its_event(self):
        pmu = make_pmu(2)
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True))
        pmu.program(1, CounterConfig(Event.BRANCHES_RETIRED, PrivFilter.ALL, True))
        pmu.count(
            {Event.INSTR_RETIRED: 10, Event.BRANCHES_RETIRED: 3},
            PrivLevel.USER,
        )
        assert pmu.read(0) == 10
        assert pmu.read(1) == 3


class TestOverflow:
    def test_counter_wraps_at_width(self):
        pmu = Pmu(n_programmable=1, counter_width=8)
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True))
        count_instr(pmu, 300, PrivLevel.USER)
        assert pmu.read(0) == 300 - 256

    def test_overflow_callback_fires(self):
        fired = []
        pmu = Pmu(n_programmable=1, counter_width=8, on_overflow=fired.append)
        pmu.program(
            0,
            CounterConfig(
                Event.INSTR_RETIRED, PrivFilter.ALL, True,
                interrupt_on_overflow=True,
            ),
        )
        count_instr(pmu, 257, PrivLevel.USER)
        assert fired == [0]

    def test_no_callback_without_interrupt_bit(self):
        fired = []
        pmu = Pmu(n_programmable=1, counter_width=8, on_overflow=fired.append)
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True))
        count_instr(pmu, 600, PrivLevel.USER)
        assert fired == []

    def test_write_wraps_to_width(self):
        pmu = Pmu(n_programmable=1, counter_width=8)
        pmu.write(0, 256 + 5)
        assert pmu.read(0) == 5


class TestFixedCounters:
    def test_fixed_counts_designated_event(self):
        pmu = make_pmu(fixed=(Event.INSTR_RETIRED,))
        pmu.configure_fixed(0, PrivFilter.ALL)
        count_instr(pmu, 50, PrivLevel.USER)
        assert pmu.read_fixed(0) == 50

    def test_fixed_disabled_by_default(self):
        pmu = make_pmu(fixed=(Event.INSTR_RETIRED,))
        count_instr(pmu, 50, PrivLevel.USER)
        assert pmu.read_fixed(0) == 0

    def test_fixed_priv_filter(self):
        pmu = make_pmu(fixed=(Event.INSTR_RETIRED,))
        pmu.configure_fixed(0, PrivFilter.OS)
        count_instr(pmu, 5, PrivLevel.USER)
        count_instr(pmu, 9, PrivLevel.KERNEL)
        assert pmu.read_fixed(0) == 9


class TestTsc:
    def test_tsc_free_runs(self):
        pmu = make_pmu()
        pmu.advance_tsc(123.0)
        assert pmu.read_tsc() == 123

    def test_tsc_cannot_run_backwards(self):
        with pytest.raises(CounterError, match="backwards"):
            make_pmu().advance_tsc(-1.0)

    def test_tsc_write(self):
        pmu = make_pmu()
        pmu.write_tsc(10)
        pmu.advance_tsc(5)
        assert pmu.read_tsc() == 15


class TestSnapshotRestore:
    def test_round_trip(self):
        pmu = make_pmu(2, fixed=(Event.CYCLES,))
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True))
        pmu.configure_fixed(0, PrivFilter.ALL)
        count_instr(pmu, 42, PrivLevel.USER)
        state = pmu.snapshot()
        count_instr(pmu, 100, PrivLevel.USER)
        pmu.restore(state)
        assert pmu.read(0) == 42

    @given(counts=st.lists(st.integers(1, 1000), min_size=1, max_size=10))
    def test_monotone_accumulation(self, counts):
        pmu = make_pmu()
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.ALL, True))
        total = 0
        for n in counts:
            count_instr(pmu, n, PrivLevel.USER)
            total += n
            assert pmu.read(0) == total

"""Hot-loop memoization: determinism under retunes and reentrancy.

The memos in :class:`~repro.cpu.core.Core` (work-cycle costs, loop CPI,
the scratch delta buffer) are pure caches — they must never change a
single count, even when the ondemand governor retunes the clock
mid-loop or an overflow handler re-enters ``retire``.
"""

import numpy as np

from repro.cpu.core import Core
from repro.cpu.events import Event, PrivFilter, cached_event_deltas
from repro.cpu.frequency import Governor
from repro.cpu.models import microarch
from repro.cpu.pmu import CounterConfig
from repro.isa.builder import CodeBuilder
from repro.isa.work import WorkVector
from repro.kernel.system import Machine


def fresh_core(governor=Governor.PERFORMANCE, seed=0):
    return Core(microarch("CD"), np.random.default_rng(seed), governor=governor)


def counting(core, event=Event.INSTR_RETIRED, interrupt_on_overflow=False):
    core.pmu.program(
        0,
        CounterConfig(
            event=event,
            priv=PrivFilter.ALL,
            enabled=True,
            interrupt_on_overflow=interrupt_on_overflow,
        ),
    )


def loop_of(trips):
    from repro.isa.block import Loop

    body = CodeBuilder("body").alu(3).load(1).build()
    header = CodeBuilder("header").alu(2).build()
    return Loop(body=body, trips=trips, header=header, label="loop")


class TestTimingMemos:
    def test_repeated_retires_hit_the_memo(self):
        core = fresh_core()
        work = WorkVector(instructions=10, loads=2)
        core.retire(work)
        assert work in core._work_cycles_memo
        before = dict(core._work_cycles_memo)
        core.retire(work)
        assert core._work_cycles_memo == before

    def test_clock_change_invalidates_memos(self):
        core = fresh_core(governor=Governor.ONDEMAND)
        work = WorkVector(instructions=10, loads=2)
        core.retire(work)
        assert core._work_cycles_memo
        other = next(
            hz for hz in core.freq.p_states_hz
            if hz != core.freq.current_hz
        )
        core.freq._current_hz = other  # what a governor retune does
        core.retire(work)
        assert core._memo_hz == other
        # The memo was rebuilt at the new clock, not reused stale.
        assert list(core._work_cycles_memo) == [work]

    def test_counts_deterministic_under_ondemand(self):
        """Memoized runs must replay each other exactly, retunes and all."""
        def run(seed):
            machine = Machine(seed=seed, governor=Governor.ONDEMAND)
            counting(machine.core)
            machine.core.execute_loop(loop_of(50_000), address=0x1000)
            return machine.core.pmu.read(0), machine.core.cycle

        assert run(3) == run(3)

    def test_loop_cpi_memo_is_keyed_by_body_and_address(self):
        core = fresh_core()
        core.loop_warmup_cycles = 0.0
        loop = loop_of(100)
        core.execute_loop(loop, address=0x1000)
        core.execute_loop(loop, address=0x2000)
        assert len(core._loop_cpi_memo) == 2
        assert {address for _, address in core._loop_cpi_memo} == {
            0x1000 + loop.header.size_bytes,
            0x2000 + loop.header.size_bytes,
        }


class TestSharedDeltaBuffers:
    def test_cached_event_deltas_is_shared_and_stable(self):
        work = WorkVector(instructions=7, branches=1)
        first = cached_event_deltas(work)
        second = cached_event_deltas(work)
        assert first is second
        assert first[Event.INSTR_RETIRED] == 7

    def test_retire_does_not_corrupt_the_shared_mapping(self):
        core = fresh_core()
        work = WorkVector(instructions=5)
        core.retire(work)
        shared = cached_event_deltas(work)
        # retire() adds CYCLES/BUS_CYCLES to a copy, never the shared dict.
        assert Event.CYCLES not in shared
        assert Event.BUS_CYCLES not in shared

    def test_reentrant_retire_via_overflow_handler(self):
        """A sampling-mode overflow callback re-enters retire() while the
        outer retire's delta buffer is mid-count; the nested retire must
        get its own buffer."""
        core = fresh_core()
        counting(core, interrupt_on_overflow=True)
        limit = core.pmu.counters[0].limit
        core.pmu.write(0, limit - 5)
        calls = []

        def handler(index):
            calls.append(index)
            if len(calls) == 1:
                core.retire(WorkVector(instructions=3), label="overflow")

        core.pmu.on_overflow = handler
        core.retire(WorkVector(instructions=10, loads=2), label="outer")
        assert len(calls) == 1
        assert core._scratch_free
        # limit-5 start, +10 outer +3 nested, one wrap: 8 remain.
        assert core.pmu.read(0) == 8


class TestScratchRelease:
    def test_scratch_released_after_normal_retire(self):
        core = fresh_core()
        core.retire(WorkVector(instructions=4))
        assert core._scratch_free

    def test_scratch_released_after_pmu_error(self):
        core = fresh_core()

        class Boom(Exception):
            pass

        def exploding(deltas, mode):
            raise Boom()

        core.pmu.count = exploding
        try:
            core.retire(WorkVector(instructions=4))
        except Boom:
            pass
        assert core._scratch_free

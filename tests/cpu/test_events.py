"""Unit tests for repro.cpu.events."""

from repro.cpu.events import Event, PrivFilter, PrivLevel, events_from_work
from repro.isa.work import WorkVector


class TestPrivFilter:
    def test_usr_matches_user_only(self):
        assert PrivFilter.USR.matches(PrivLevel.USER)
        assert not PrivFilter.USR.matches(PrivLevel.KERNEL)

    def test_os_matches_kernel_only(self):
        assert PrivFilter.OS.matches(PrivLevel.KERNEL)
        assert not PrivFilter.OS.matches(PrivLevel.USER)

    def test_all_matches_both(self):
        assert PrivFilter.ALL.matches(PrivLevel.USER)
        assert PrivFilter.ALL.matches(PrivLevel.KERNEL)

    def test_none_matches_nothing(self):
        assert not PrivFilter.NONE.matches(PrivLevel.USER)
        assert not PrivFilter.NONE.matches(PrivLevel.KERNEL)

    def test_all_is_union(self):
        assert PrivFilter.ALL == PrivFilter.USR | PrivFilter.OS


class TestEventsFromWork:
    def test_maps_every_architectural_field(self):
        work = WorkVector(
            instructions=10, branches=3, taken_branches=2, loads=4, stores=1
        )
        deltas = events_from_work(work)
        assert deltas[Event.INSTR_RETIRED] == 10
        assert deltas[Event.BRANCHES_RETIRED] == 3
        assert deltas[Event.TAKEN_BRANCHES] == 2
        assert deltas[Event.LOADS_RETIRED] == 4
        assert deltas[Event.STORES_RETIRED] == 1

    def test_cycles_not_derivable_from_work(self):
        assert Event.CYCLES not in events_from_work(WorkVector(instructions=1))

"""Unit tests for the placement models (repro.cpu.branch / fetch)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.branch import BranchPlacementModel
from repro.cpu.fetch import FetchPlacementModel
from repro.errors import ConfigurationError


class TestBranchPlacement:
    def test_deterministic(self):
        model = BranchPlacementModel()
        assert model.penalty_per_iteration(0x8048123) == model.penalty_per_iteration(
            0x8048123
        )

    def test_all_penalties_reachable(self):
        model = BranchPlacementModel(alias_penalties=(0.0, 1.0))
        seen = {
            model.alias_class(0x8048000 + 16 * i) for i in range(4096)
        }
        assert seen == {0, 1}

    def test_penalty_from_table(self):
        model = BranchPlacementModel(alias_penalties=(0.0, 2.5))
        for address in range(0x8048000, 0x8048000 + 64 * 64, 64):
            assert model.penalty_per_iteration(address) in (0.0, 2.5)

    def test_btb_set_within_range(self):
        model = BranchPlacementModel(btb_sets=512)
        assert 0 <= model.btb_set(0xFFFFFFFF) < 512

    def test_power_of_two_required(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            BranchPlacementModel(btb_sets=100)

    def test_empty_penalties_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            BranchPlacementModel(alias_penalties=())

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            BranchPlacementModel(alias_penalties=(0.0, -1.0))

    @given(address=st.integers(0, 2**32 - 1))
    def test_nearby_addresses_share_class_within_shift(self, address):
        model = BranchPlacementModel(index_shift=4)
        base = address & ~0xF
        classes = {model.alias_class(base + off) for off in range(16)}
        assert len(classes) == 1


class TestFetchPlacement:
    def test_no_crossing_when_aligned_and_small(self):
        model = FetchPlacementModel(line_bytes=16, bubble_cycles=1.0)
        assert model.line_crossings(0x1000, 10) == 0

    def test_crossing_when_straddling(self):
        model = FetchPlacementModel(line_bytes=16, bubble_cycles=1.0)
        assert model.line_crossings(0x100A, 10) == 1
        assert model.penalty_per_iteration(0x100A, 10) == 1.0

    def test_multiple_crossings(self):
        model = FetchPlacementModel(line_bytes=16)
        assert model.line_crossings(0x1001, 40) == 2

    def test_zero_size_body(self):
        model = FetchPlacementModel()
        assert model.line_crossings(0x1000, 0) == 0
        assert model.penalty_per_iteration(0x1000, 0) == 0.0

    def test_page_crossing_penalty(self):
        model = FetchPlacementModel(
            bubble_cycles=0.0, page_bytes=4096, page_bubble_cycles=2.0
        )
        assert model.penalty_per_iteration(4096 - 4, 10) == 2.0

    def test_bad_line_size(self):
        with pytest.raises(ConfigurationError, match="line_bytes"):
            FetchPlacementModel(line_bytes=0)

    @given(
        address=st.integers(0, 2**24),
        size=st.integers(1, 256),
    )
    def test_crossings_bounded(self, address, size):
        model = FetchPlacementModel(line_bytes=16)
        crossings = model.line_crossings(address, size)
        assert 0 <= crossings <= size // 16 + 1

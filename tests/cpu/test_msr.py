"""Unit tests for repro.cpu.msr."""

import pytest

from repro.cpu.events import Event, PrivFilter
from repro.cpu.msr import (
    MSR_PERFCTR_BASE,
    MSR_PERFEVTSEL_BASE,
    MSR_TSC,
    MsrFile,
    decode_evtsel,
    encode_evtsel,
)
from repro.cpu.pmu import CounterConfig, Pmu
from repro.errors import CounterError

CODES = {Event.INSTR_RETIRED: 0xC0, Event.CYCLES: 0x3C}


@pytest.fixture
def msr() -> MsrFile:
    return MsrFile(Pmu(n_programmable=2), CODES)


class TestEvtselEncoding:
    @pytest.mark.parametrize("priv", [PrivFilter.USR, PrivFilter.OS, PrivFilter.ALL])
    @pytest.mark.parametrize("enabled", [False, True])
    def test_round_trip(self, priv, enabled):
        config = CounterConfig(Event.INSTR_RETIRED, priv, enabled)
        value = encode_evtsel(config, CODES[Event.INSTR_RETIRED])
        decoded = decode_evtsel(value, {0xC0: Event.INSTR_RETIRED})
        assert decoded == config

    def test_interrupt_bit_round_trips(self):
        config = CounterConfig(
            Event.CYCLES, PrivFilter.ALL, True, interrupt_on_overflow=True
        )
        value = encode_evtsel(config, CODES[Event.CYCLES])
        assert decode_evtsel(value, {0x3C: Event.CYCLES}) == config

    def test_unknown_code_rejected(self):
        with pytest.raises(CounterError, match="unknown event code"):
            decode_evtsel(0xFF, {0xC0: Event.INSTR_RETIRED})


class TestMsrFile:
    def test_tsc_read_write(self, msr):
        msr.write(MSR_TSC, 777)
        assert msr.read(MSR_TSC) == 777

    def test_counter_value_registers(self, msr):
        msr.write(MSR_PERFCTR_BASE + 1, 41)
        assert msr.read(MSR_PERFCTR_BASE + 1) == 41
        assert msr.pmu.read(1) == 41

    def test_evtsel_programs_pmu(self, msr):
        config = CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR, True)
        msr.write(MSR_PERFEVTSEL_BASE, encode_evtsel(config, 0xC0))
        assert msr.pmu.counters[0].config == config

    def test_evtsel_reads_back(self, msr):
        config = CounterConfig(Event.CYCLES, PrivFilter.ALL, True)
        msr.write(MSR_PERFEVTSEL_BASE + 1, encode_evtsel(config, 0x3C))
        assert msr.read(MSR_PERFEVTSEL_BASE + 1) == encode_evtsel(config, 0x3C)

    def test_unprogrammed_evtsel_reads_zero(self, msr):
        assert msr.read(MSR_PERFEVTSEL_BASE) == 0

    @pytest.mark.parametrize("op", ["read", "write"])
    def test_unmapped_address(self, msr, op):
        with pytest.raises(CounterError, match="unmapped"):
            if op == "read":
                msr.read(0xDEAD)
            else:
                msr.write(0xDEAD, 1)

    def test_out_of_range_counter_msr_unmapped(self, msr):
        with pytest.raises(CounterError, match="unmapped"):
            msr.read(MSR_PERFCTR_BASE + 2)  # only 2 counters

"""Unit tests for the processor catalogue (paper Table 1)."""

import pytest

from repro.cpu.events import Event
from repro.cpu.models import PROCESSORS, microarch
from repro.errors import ConfigurationError, UnsupportedEventError


class TestTable1:
    """The catalogue must match the paper's Table 1 exactly."""

    def test_three_processors(self):
        assert set(PROCESSORS) == {"PD", "CD", "K8"}

    @pytest.mark.parametrize(
        "key,ghz,prog,fixed,uarch_name",
        [
            ("PD", 3.0, 18, 0, "NetBurst"),
            ("CD", 2.4, 2, 3, "Core2"),
            ("K8", 2.2, 4, 0, "K8"),
        ],
    )
    def test_row(self, key, ghz, prog, fixed, uarch_name):
        uarch = microarch(key)
        assert uarch.freq_ghz == ghz
        assert uarch.n_prog_counters == prog
        assert uarch.n_fixed_counters == fixed
        assert uarch.uarch_name == uarch_name

    def test_unknown_processor(self):
        with pytest.raises(ConfigurationError, match="unknown processor"):
            microarch("P6")


class TestFactories:
    @pytest.mark.parametrize("key", ["PD", "CD", "K8"])
    def test_pmu_matches_catalogue(self, key):
        uarch = microarch(key)
        pmu = uarch.make_pmu()
        assert pmu.n_programmable == uarch.n_prog_counters
        assert pmu.n_fixed == uarch.n_fixed_counters

    @pytest.mark.parametrize("key", ["PD", "CD", "K8"])
    def test_timing_builds(self, key):
        timing = microarch(key).make_timing()
        assert timing.loop_base_cpi > 0

    @pytest.mark.parametrize("key", ["PD", "CD", "K8"])
    def test_all_study_events_encodable(self, key):
        uarch = microarch(key)
        for event in Event:
            assert uarch.supports_event(event)
            assert uarch.event_code(event) >= 0

    def test_event_code_failure_message(self):
        uarch = microarch("CD")
        trimmed = {
            ev: code
            for ev, code in uarch.event_codes.items()
            if ev is Event.INSTR_RETIRED
        }
        from dataclasses import replace

        smaller = replace(uarch, key="CDX", event_codes=trimmed)
        with pytest.raises(UnsupportedEventError, match="no native encoding"):
            smaller.event_code(Event.CYCLES)

    def test_netburst_needs_more_msr_writes(self):
        # ESCR/CCCR pairs: a real source of per-platform driver cost.
        assert (
            microarch("PD").pmc_msr_writes_per_counter
            > microarch("CD").pmc_msr_writes_per_counter
        )

    @pytest.mark.parametrize("key", ["PD", "CD", "K8"])
    def test_p_states_ascend_to_nominal(self, key):
        uarch = microarch(key)
        states = uarch.p_states_hz()
        assert states == tuple(sorted(states))
        assert states[-1] == uarch.freq_hz


class TestExtensionPlatforms:
    def test_p3_not_in_table1(self):
        from repro.cpu.models import EXTRA_PROCESSORS, PROCESSORS

        assert "P3" in EXTRA_PROCESSORS
        assert "P3" not in PROCESSORS  # Table 1 stays the paper's three

    def test_p3_bootable(self):
        from repro.kernel.system import Machine

        machine = Machine(processor="P3", kernel="perfmon", io_interrupts=False)
        assert machine.uarch.uarch_name == "P6"
        assert machine.core.pmu.n_programmable == 2

    def test_p3_measurable(self):
        from repro.core import (
            MeasurementConfig,
            Mode,
            NullBenchmark,
            Pattern,
            run_measurement,
        )

        config = MeasurementConfig(
            processor="P3", infra="pm", pattern=Pattern.READ_READ,
            mode=Mode.USER, io_interrupts=False,
        )
        assert run_measurement(config, NullBenchmark()).error > 0

    def test_all_processors_superset(self):
        from repro.cpu.models import ALL_PROCESSORS, PROCESSORS

        assert set(PROCESSORS) < set(ALL_PROCESSORS)

"""The client's default retry policy: bounded, backed off, replayable.

Units stub out ``_call_once`` so the policy is tested against exact
failure sequences without sockets; the end-to-end class drives a live
service with ``queue-full`` and ``conn-drop`` chaos and shows the
default client riding straight through faults that kill a
``retry=False`` client.
"""

import time

import pytest

from repro.chaos import configure_chaos, reset_chaos
from repro.obs.metrics import build_unified_registry
from repro.service import (
    RetryBudgetExceeded,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
    ServiceInThread,
)
from repro.service import protocol


@pytest.fixture(autouse=True)
def clean_chaos():
    reset_chaos()
    yield
    reset_chaos()


@pytest.fixture(autouse=True)
def no_sleep(monkeypatch):
    """Record backoff sleeps instead of serving them."""
    slept = []
    monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
    yield slept


def scripted_client(failures, payload=None, **kwargs):
    """A client whose ``_call_once`` fails per script, then succeeds."""
    client = ServiceClient("localhost", 1, **kwargs)
    script = list(failures)
    calls = []

    def fake_call_once(op, **fields):
        calls.append(op)
        if script:
            raise script.pop(0)
        return payload or {"ok": True}

    client._call_once = fake_call_once
    client.calls = calls
    return client


def queue_full(retry_after=None):
    return ServiceError(protocol.E_QUEUE_FULL, "queue full", retry_after)


class TestRetryPolicy:
    def test_transient_queue_full_is_retried_to_success(self, no_sleep):
        client = scripted_client([queue_full(), queue_full()])
        assert client.call("submit") == {"ok": True}
        assert len(client.calls) == 3
        assert len(no_sleep) == 2

    def test_connection_loss_is_retried(self):
        client = scripted_client(
            [ServiceConnectionError("server closed mid-request")]
        )
        assert client.call("status") == {"ok": True}

    def test_retry_counter_increments(self, no_sleep):
        registry = build_unified_registry()
        counter = registry.get("repro_client_retries_total")
        before = counter.value
        scripted_client([queue_full()]).call("submit")
        assert counter.value == before + 1

    def test_non_retryable_error_raises_immediately(self):
        client = scripted_client(
            [ServiceError(protocol.E_UNKNOWN_ARTIFACT, "no such artifact")]
        )
        with pytest.raises(ServiceError) as excinfo:
            client.call("submit")
        assert not isinstance(excinfo.value, RetryBudgetExceeded)
        assert len(client.calls) == 1

    def test_budget_exhaustion_is_structured(self, no_sleep):
        client = scripted_client(
            [queue_full() for _ in range(5)], max_attempts=3
        )
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            client.call("submit")
        error = excinfo.value
        assert error.code == protocol.E_QUEUE_FULL
        assert error.attempts == 3
        assert error.last.message == "queue full"
        assert len(client.calls) == 3
        assert len(no_sleep) == 2  # no sleep after the final failure

    def test_oserror_retried_but_original_reraised(self, no_sleep):
        # "cannot reach service" handling in the CLI keys on OSError;
        # exhaustion must surface the original, not a wrapper.
        boom = ConnectionRefusedError("nothing listening")
        client = scripted_client([boom, boom, boom], max_attempts=3)
        with pytest.raises(ConnectionRefusedError) as excinfo:
            client.call("health")
        assert excinfo.value is boom

    def test_retry_false_never_retries(self, no_sleep):
        client = scripted_client([queue_full()], retry=False)
        with pytest.raises(ServiceError):
            client.call("submit")
        assert len(client.calls) == 1
        assert no_sleep == []


class TestBackoff:
    def test_server_retry_after_hint_is_honoured(self, no_sleep):
        client = scripted_client([queue_full(retry_after=0.7)])
        client.call("submit")
        assert no_sleep == [0.7]

    def test_exponential_growth_with_cap(self):
        client = ServiceClient(
            "localhost", 1, client_id="fixed",
            backoff_base=0.1, backoff_cap=0.4,
        )
        delays = [client._backoff_delay(a, None) for a in range(6)]
        # Jitter is in [0.5, 1.0]x of min(cap, base * 2^attempt).
        for attempt, delay in enumerate(delays):
            ceiling = min(0.4, 0.1 * (2 ** attempt))
            assert 0.5 * ceiling <= delay <= ceiling

    def test_jitter_is_seeded_by_client_id(self):
        a = ServiceClient("localhost", 1, client_id="same")
        b = ServiceClient("localhost", 1, client_id="same")
        c = ServiceClient("localhost", 1, client_id="other")
        seq_a = [a._backoff_delay(n, None) for n in range(8)]
        seq_b = [b._backoff_delay(n, None) for n in range(8)]
        seq_c = [c._backoff_delay(n, None) for n in range(8)]
        assert seq_a == seq_b  # replayable
        assert seq_a != seq_c  # de-synchronized across clients


class TestChaosEndToEnd:
    def test_queue_full_chaos_is_ridden_out_by_default(self):
        # Every other submission is rejected with backpressure; the
        # default client retries through, the no-retry client dies.
        configure_chaos("queue-full:p=1,times=1")
        with ServiceInThread(workers=1, queue_depth=16) as handle:
            with ServiceClient(
                handle.host, handle.port, retry=False
            ) as brittle:
                with pytest.raises(ServiceError) as excinfo:
                    brittle.submit_artifact("figure4", repeats=1)
                assert excinfo.value.code == protocol.E_QUEUE_FULL
            reset_chaos()
            configure_chaos("queue-full:p=1,times=1")
            with ServiceClient(handle.host, handle.port) as client:
                job = client.submit_artifact("figure4", repeats=1)
                result = client.wait(job["id"], timeout=120.0)
        assert "report" in result

    def test_conn_drop_chaos_reconnects_transparently(self):
        configure_chaos("conn-drop:p=1,times=1")
        with ServiceInThread(workers=1, queue_depth=16) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                # First request's response is dropped on the floor;
                # the client reconnects and retries.
                health = client.health()
        assert health["status"] == "ok"

    def test_conn_drop_without_retry_is_a_loud_error(self):
        configure_chaos("conn-drop:p=1,times=1")
        with ServiceInThread(workers=1, queue_depth=16) as handle:
            with ServiceClient(
                handle.host, handle.port, retry=False
            ) as client:
                with pytest.raises(ServiceConnectionError):
                    client.health()

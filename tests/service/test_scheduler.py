"""Scheduler behaviour: dedup, lifecycle, cancellation, shutdown."""

import asyncio
import threading

import pytest

from repro.errors import ReproError
from repro.service.queue import JobQueue, QueueFull
from repro.service.scheduler import (
    JobState,
    Scheduler,
    SchedulerClosed,
    artifact_job,
    plan_job,
)


def run_async(coro):
    return asyncio.run(coro)


async def wait_for(predicate, timeout=10.0, interval=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


class GatedJob:
    """A job body that blocks until the test releases it."""

    def __init__(self, payload=None):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self.payload = payload or {"ok": True}

    def __call__(self):
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=30), "test never released the job"
        return self.payload


class TestDedup:
    def test_identical_inflight_submissions_share_one_execution(self):
        async def scenario():
            scheduler = Scheduler(queue=JobQueue(8), workers=1)
            scheduler.start()
            job = GatedJob(payload={"n": 1})
            first, coalesced_first = scheduler.submit(
                token="tok", kind="plan", description="gated", run=job
            )
            assert not coalesced_first
            await wait_for(job.started.is_set)  # now RUNNING
            second, coalesced_second = scheduler.submit(
                token="tok", kind="plan", description="gated", run=job
            )
            assert coalesced_second
            assert second is first
            assert first.coalesced == 1
            job.release.set()
            await asyncio.wait_for(first.done_event.wait(), timeout=10)
            assert first.state is JobState.DONE
            assert first.payload == {"n": 1}
            assert job.calls == 1  # the plan executed exactly once
            assert scheduler.stats.executed == 1
            assert scheduler.stats.coalesced == 1
            assert scheduler.stats.submitted == 1
            await scheduler.shutdown(grace=5)

        run_async(scenario())

    def test_finished_jobs_do_not_absorb_new_submissions(self):
        async def scenario():
            scheduler = Scheduler(queue=JobQueue(8), workers=1)
            scheduler.start()
            first, _ = scheduler.submit(
                token="tok", kind="plan", description="fast",
                run=lambda: {"n": 1},
            )
            await asyncio.wait_for(first.done_event.wait(), timeout=10)
            second, coalesced = scheduler.submit(
                token="tok", kind="plan", description="fast",
                run=lambda: {"n": 2},
            )
            assert not coalesced
            assert second is not first
            await scheduler.shutdown(grace=5)

        run_async(scenario())


class TestLifecycle:
    def test_failure_is_recorded_not_raised(self):
        async def scenario():
            scheduler = Scheduler(queue=JobQueue(8), workers=1)
            scheduler.start()

            def explode():
                raise ValueError("boom")

            record, _ = scheduler.submit(
                token="bad", kind="plan", description="bad", run=explode
            )
            await asyncio.wait_for(record.done_event.wait(), timeout=10)
            assert record.state is JobState.FAILED
            assert "ValueError: boom" in record.error
            assert scheduler.stats.failed == 1
            await scheduler.shutdown(grace=5)

        run_async(scenario())

    def test_cancel_queued_job(self):
        async def scenario():
            scheduler = Scheduler(queue=JobQueue(8), workers=1)
            scheduler.start()
            gated = GatedJob()
            busy, _ = scheduler.submit(
                token="busy", kind="plan", description="busy", run=gated
            )
            await wait_for(gated.started.is_set)
            queued, _ = scheduler.submit(
                token="victim", kind="plan", description="victim",
                run=lambda: {"never": True},
            )
            cancelled = scheduler.cancel(queued.id)
            assert cancelled.state is JobState.CANCELLED
            assert scheduler.queue.depth == 0
            # a running job cannot be cancelled
            with pytest.raises(ReproError):
                scheduler.cancel(busy.id)
            assert scheduler.cancel("job-nonexistent") is None
            gated.release.set()
            await scheduler.shutdown(grace=5)

        run_async(scenario())

    def test_backpressure_propagates(self):
        async def scenario():
            scheduler = Scheduler(queue=JobQueue(max_depth=1), workers=1)
            scheduler.start()
            gated = GatedJob()
            scheduler.submit(
                token="t0", kind="plan", description="running", run=gated
            )
            await wait_for(gated.started.is_set)
            scheduler.submit(
                token="t1", kind="plan", description="fills the queue",
                run=lambda: {},
            )
            with pytest.raises(QueueFull) as err:
                scheduler.submit(
                    token="t2", kind="plan", description="rejected",
                    run=lambda: {},
                )
            assert err.value.retry_after > 0
            gated.release.set()
            await scheduler.shutdown(grace=5)

        run_async(scenario())


class TestGracefulShutdown:
    def test_running_job_finishes_and_queued_job_is_cancelled(self):
        async def scenario():
            scheduler = Scheduler(queue=JobQueue(8), workers=1)
            scheduler.start()
            gated = GatedJob(payload={"survived": True})
            running, _ = scheduler.submit(
                token="running", kind="plan", description="mid-job",
                run=gated,
            )
            await wait_for(gated.started.is_set)
            queued, _ = scheduler.submit(
                token="queued", kind="plan", description="never runs",
                run=lambda: {"never": True},
            )
            shutdown = asyncio.create_task(scheduler.shutdown(grace=30))
            await wait_for(lambda: queued.state is JobState.CANCELLED)
            assert running.state is JobState.RUNNING  # still mid-job
            with pytest.raises(SchedulerClosed):
                scheduler.submit(
                    token="late", kind="plan", description="late",
                    run=lambda: {},
                )
            gated.release.set()
            await asyncio.wait_for(shutdown, timeout=10)
            assert running.state is JobState.DONE
            assert running.payload == {"survived": True}
            assert queued.error == "server shutdown"
            assert scheduler.stats.cancelled == 1

        run_async(scenario())


class TestJobBuilders:
    def test_artifact_job_token_is_stable(self):
        token_a, describe, _ = artifact_job("figure4", repeats=1, seed=0)
        token_b, _, _ = artifact_job("figure4", repeats=1, seed=0)
        token_c, _, _ = artifact_job("figure4", repeats=1, seed=1)
        assert token_a == token_b
        assert token_a != token_c
        assert "figure4" in describe

    def test_artifact_job_rejects_unknown_artifact(self):
        with pytest.raises(ReproError):
            artifact_job("figure99")

    def test_plan_job_runs_a_declarative_plan(self):
        plan = {
            "jobs": [
                {
                    "config": {
                        "processor": "CD", "infra": "pc",
                        "pattern": "rr", "mode": "user", "seed": 3,
                    },
                    "benchmark": {"kind": "loop", "args": [1000]},
                    "tags": {"case": "demo"},
                },
            ]
        }
        token_a, describe, run = plan_job(plan)
        token_b, _, _ = plan_job(plan)
        assert token_a == token_b  # same declarative plan, same address
        assert "1 job(s)" in describe
        payload = run()
        assert payload["columns"]
        [row] = payload["rows"]
        assert row["case"] == "demo"
        assert row["expected"] == 3 * 1000 + 1  # the 1 + 3*MAX loop model

    def test_plan_job_validates_at_admission(self):
        with pytest.raises(ReproError):
            plan_job({"jobs": []})
        with pytest.raises(ReproError):
            plan_job({"jobs": [{"config": {"processor": "Z80"}}]})

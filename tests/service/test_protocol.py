"""Protocol round-trips, validation, and version negotiation."""

import json

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION,
    CancelRequest,
    HealthRequest,
    ListRequest,
    MetricsRequest,
    ProtocolError,
    Response,
    ResultRequest,
    StatusRequest,
    SubmitRequest,
    encode_line,
    parse_request,
    parse_response,
)


def roundtrip(request):
    return parse_request(encode_line(request))


class TestRequestRoundTrip:
    def test_submit_artifact(self):
        request = SubmitRequest(
            client="c1", artifact="figure4", repeats=2, seed=7, priority=3
        )
        assert roundtrip(request) == request

    def test_submit_plan(self):
        request = SubmitRequest(
            kind="plan",
            plan={"jobs": [{"config": {"processor": "CD"}}]},
        )
        back = roundtrip(request)
        assert back.kind == "plan"
        assert back.plan == {"jobs": [{"config": {"processor": "CD"}}]}

    @pytest.mark.parametrize(
        "cls", [StatusRequest, ResultRequest, CancelRequest]
    )
    def test_job_requests(self, cls):
        request = cls(client="me", job_id="job-1-abc")
        back = roundtrip(request)
        assert back == request
        assert back.job_id == "job-1-abc"

    @pytest.mark.parametrize(
        "cls", [HealthRequest, MetricsRequest, ListRequest]
    )
    def test_bare_requests(self, cls):
        assert roundtrip(cls()) == cls()

    def test_wire_is_one_json_line(self):
        line = encode_line(SubmitRequest(artifact="table1"))
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        data = json.loads(line)
        assert data["v"] == PROTOCOL_VERSION
        assert data["op"] == "submit"


class TestRequestValidation:
    def test_submit_requires_artifact(self):
        with pytest.raises(ProtocolError) as err:
            SubmitRequest(artifact=None)
        assert err.value.code == "bad-request"

    def test_submit_rejects_bad_kind(self):
        with pytest.raises(ProtocolError):
            SubmitRequest(kind="mystery", artifact="x")

    def test_submit_rejects_bad_priority(self):
        with pytest.raises(ProtocolError):
            SubmitRequest(artifact="x", priority=10)

    def test_submit_rejects_bad_repeats(self):
        with pytest.raises(ProtocolError):
            SubmitRequest(artifact="x", repeats=0)

    def test_job_request_requires_id(self):
        with pytest.raises(ProtocolError):
            StatusRequest(job_id="")

    def test_non_json_line(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(b"not json at all\n")
        assert err.value.code == "bad-request"

    def test_non_object_line(self):
        with pytest.raises(ProtocolError):
            parse_request(b"[1, 2, 3]\n")

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(json.dumps({"v": PROTOCOL_VERSION}).encode())
        assert "op" in err.value.message

    def test_unknown_op(self):
        line = json.dumps({"v": PROTOCOL_VERSION, "op": "launch"}).encode()
        with pytest.raises(ProtocolError) as err:
            parse_request(line)
        assert err.value.code == "unknown-op"

    def test_wrong_field_type(self):
        line = json.dumps(
            {"v": PROTOCOL_VERSION, "op": "submit", "artifact": 42}
        ).encode()
        with pytest.raises(ProtocolError) as err:
            parse_request(line)
        assert err.value.code == "bad-request"


class TestVersioning:
    def test_newer_version_rejected(self):
        line = json.dumps(
            {"v": PROTOCOL_VERSION + 1, "op": "health"}
        ).encode()
        with pytest.raises(ProtocolError) as err:
            parse_request(line)
        assert err.value.code == "unsupported-version"
        assert str(PROTOCOL_VERSION) in err.value.message

    def test_missing_version_rejected(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(json.dumps({"op": "health"}).encode())
        assert err.value.code == "bad-request"

    def test_non_integer_version_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request(json.dumps({"v": "1", "op": "health"}).encode())


class TestResponse:
    def test_success_roundtrip(self):
        response = Response.success("status", job={"id": "j1", "state": "done"})
        back = parse_response(encode_line(response))
        assert back.ok
        assert back.op == "status"
        assert back.payload["job"]["id"] == "j1"

    def test_failure_roundtrip(self):
        response = Response.failure(
            "submit", "queue-full", "full", retry_after=0.5
        )
        back = parse_response(encode_line(response))
        assert not back.ok
        assert back.error["code"] == "queue-full"
        assert back.error["retry_after"] == 0.5

    def test_failure_without_retry_after(self):
        response = Response.failure("x", "internal", "boom")
        assert "retry_after" not in response.to_wire()["error"]

    def test_malformed_response_rejected(self):
        with pytest.raises(ProtocolError):
            parse_response(json.dumps({"v": PROTOCOL_VERSION}).encode())

"""Service-layer tracing: trace_id end to end, dedup spans, watchdog."""

import asyncio
import io
import json
import threading

import pytest

from repro.obs.logging import NULL_LOGGER, StructuredLogger
from repro.obs.metrics import build_unified_registry
from repro.obs.spans import TraceCollector
from repro.service.protocol import ProtocolError, SubmitRequest
from repro.service.queue import JobQueue
from repro.service.scheduler import JobState, Scheduler


def run_async(coro):
    return asyncio.run(coro)


async def wait_for(predicate, timeout=10.0, interval=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


class GatedJob:
    """A job body that blocks until the test releases it."""

    def __init__(self, payload=None):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = 0
        self.payload = payload or {"ok": True}

    def __call__(self):
        self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=30), "test never released the job"
        return self.payload


class TestProtocolTraceId:
    def test_trace_id_roundtrips_on_the_wire(self):
        request = SubmitRequest(artifact="figure4", trace_id="a" * 32)
        wire = request.to_wire()
        assert wire["trace_id"] == "a" * 32
        assert SubmitRequest.from_wire(wire).trace_id == "a" * 32

    def test_absent_trace_id_stays_off_the_wire(self):
        request = SubmitRequest(artifact="figure4")
        assert "trace_id" not in request.to_wire()
        assert SubmitRequest.from_wire({"artifact": "figure4"}).trace_id is None

    def test_invalid_trace_ids_rejected(self):
        with pytest.raises(ProtocolError):
            SubmitRequest(artifact="figure4", trace_id="")
        with pytest.raises(ProtocolError):
            SubmitRequest(artifact="figure4", trace_id="x" * 129)


def make_scheduler(**kwargs):
    kwargs.setdefault("queue", JobQueue(16))
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("collector", TraceCollector())
    kwargs.setdefault("logger", NULL_LOGGER)
    kwargs.setdefault("slow_job_threshold", None)
    return Scheduler(**kwargs)


class TestSchedulerSpans:
    def test_client_trace_id_threads_through_to_execution(self):
        async def scenario():
            scheduler = make_scheduler()
            scheduler.start()
            record, _ = scheduler.submit(
                token="tok", kind="plan", description="d",
                run=lambda: {"ok": True}, trace_id="c" * 32,
            )
            assert record.trace.trace_id == "c" * 32
            assert record.snapshot()["trace_id"] == "c" * 32
            await wait_for(lambda: record.state is JobState.DONE)
            await scheduler.shutdown(grace=5)
            return scheduler

        scheduler = run_async(scenario())
        spans = scheduler.collector.spans
        by_name = {s.name: s for s in spans}
        submit = by_name["job.submit"]
        assert submit.trace_id == "c" * 32
        # queue-wait and execute both parent onto the submission span
        assert by_name["job.queue-wait"].parent_id == submit.span_id
        assert by_name["job.execute"].parent_id == submit.span_id
        assert by_name["job.queue-wait"].category == "queue"
        assert by_name["job.execute"].category == "scheduler"
        assert {s.trace_id for s in spans} == {"c" * 32}

    def test_server_mints_trace_when_client_sent_none(self):
        async def scenario():
            scheduler = make_scheduler()
            scheduler.start()
            record, _ = scheduler.submit(
                token="tok", kind="plan", description="d",
                run=lambda: {"ok": True},
            )
            assert record.trace is not None
            assert len(record.trace.trace_id) == 32
            await wait_for(lambda: record.state is JobState.DONE)
            await scheduler.shutdown(grace=5)

        run_async(scenario())

    def test_no_collector_means_no_trace_no_spans(self):
        async def scenario():
            scheduler = Scheduler(
                queue=JobQueue(4), workers=1, collector=None,
                logger=NULL_LOGGER, slow_job_threshold=None,
            )
            scheduler.start()
            record, _ = scheduler.submit(
                token="tok", kind="plan", description="d",
                run=lambda: {"ok": True}, trace_id="d" * 32,
            )
            assert record.trace is None
            assert "trace_id" not in record.snapshot()
            await wait_for(lambda: record.state is JobState.DONE)
            await scheduler.shutdown(grace=5)

        run_async(scenario())


class TestDedupSpans:
    def test_n_submissions_one_execution_span(self):
        async def scenario():
            scheduler = make_scheduler()
            scheduler.start()
            job = GatedJob()
            record, coalesced = scheduler.submit(
                token="tok", kind="plan", description="d", run=job,
                trace_id="1" * 32,
            )
            assert not coalesced
            await wait_for(job.started.is_set)
            for i in range(3):
                other, was_coalesced = scheduler.submit(
                    token="tok", kind="plan", description="d", run=job,
                    trace_id=f"{i + 2}" * 32,
                )
                assert was_coalesced and other is record
            job.release.set()
            await wait_for(lambda: record.state is JobState.DONE)
            await scheduler.shutdown(grace=5)
            return scheduler, record

        scheduler, record = run_async(scenario())
        spans = scheduler.collector.spans
        submits = [s for s in spans if s.name == "job.submit"]
        executes = [s for s in spans if s.name == "job.execute"]
        assert len(submits) == 4  # every submission, coalesced or not
        assert len(executes) == 1  # one execution feeds all of them
        assert executes[0].attributes["coalesced"] == 3
        assert executes[0].trace_id == "1" * 32  # the first submitter's
        # each submission span keeps its submitter's trace and points
        # at the shared execution record
        assert {s.trace_id for s in submits} == {
            "1" * 32, "2" * 32, "3" * 32, "4" * 32
        }
        assert {s.attributes["job"] for s in submits} == {record.id}
        coalesced_spans = [
            s for s in submits if s.attributes.get("coalesced")
        ]
        assert len(coalesced_spans) == 3
        assert all(
            s.attributes["execution_trace_id"] == "1" * 32
            for s in coalesced_spans
        )


class TestSlowJobWatchdog:
    def test_slow_job_warned_once_with_metric(self):
        async def scenario():
            stream = io.StringIO()
            registry = build_unified_registry()
            scheduler = Scheduler(
                queue=JobQueue(4), workers=1, registry=registry,
                collector=None, logger=StructuredLogger(stream=stream),
                slow_job_threshold=0.01,
            )
            scheduler.start()
            job = GatedJob()
            record, _ = scheduler.submit(
                token="tok", kind="plan", description="slow one", run=job
            )
            await wait_for(job.started.is_set)
            await asyncio.sleep(0.02)
            assert scheduler.check_slow_jobs() == 1
            assert scheduler.check_slow_jobs() == 0  # warn once per job
            job.release.set()
            await wait_for(lambda: record.state is JobState.DONE)
            await scheduler.shutdown(grace=5)
            return stream, registry, record

        stream, registry, record = run_async(scenario())
        warnings = [
            json.loads(line) for line in stream.getvalue().splitlines()
            if json.loads(line)["event"] == "job.slow"
        ]
        assert len(warnings) == 1
        assert warnings[0]["level"] == "warning"
        assert warnings[0]["job"] == record.id
        assert warnings[0]["run_seconds"] >= 0.01
        assert warnings[0]["threshold_seconds"] == 0.01
        assert registry.get("repro_slow_job_warnings_total").value == 1

    def test_fast_jobs_never_warned(self):
        async def scenario():
            scheduler = Scheduler(
                queue=JobQueue(4), workers=1, collector=None,
                logger=NULL_LOGGER, slow_job_threshold=60.0,
            )
            scheduler.start()
            record, _ = scheduler.submit(
                token="tok", kind="plan", description="fast",
                run=lambda: {"ok": True},
            )
            await wait_for(lambda: record.state is JobState.DONE)
            assert scheduler.check_slow_jobs() == 0
            await scheduler.shutdown(grace=5)

        run_async(scenario())

    def test_watchdog_task_lifecycle(self):
        async def scenario():
            scheduler = Scheduler(
                queue=JobQueue(4), workers=1, collector=None,
                logger=NULL_LOGGER, slow_job_threshold=30.0,
            )
            scheduler.start()
            assert scheduler._watchdog_task is not None
            await scheduler.shutdown(grace=5)
            assert scheduler._watchdog_task is None

            disabled = Scheduler(
                queue=JobQueue(4), workers=1, collector=None,
                logger=NULL_LOGGER, slow_job_threshold=None,
            )
            disabled.start()
            assert disabled._watchdog_task is None
            await disabled.shutdown(grace=5)

        run_async(scenario())

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(slow_job_threshold=0)
        with pytest.raises(ValueError):
            Scheduler(slow_job_threshold=-1.0)


class TestArtifactDurations:
    def test_artifact_duration_family_observes_completions(self):
        async def scenario():
            registry = build_unified_registry()
            scheduler = Scheduler(
                queue=JobQueue(4), workers=1, registry=registry,
                collector=None, logger=NULL_LOGGER,
                slow_job_threshold=None,
            )
            scheduler.start()
            record, _ = scheduler.submit(
                token="tok", kind="artifact", description="d",
                run=lambda: {"ok": True}, artifact="figure4",
            )
            await wait_for(lambda: record.state is JobState.DONE)
            await scheduler.shutdown(grace=5)
            return registry

        registry = run_async(scenario())
        family = registry.get("repro_artifact_duration_seconds")
        assert family.labels("figure4").count == 1
        assert 'artifact="figure4"' in registry.render()


class TestEndToEnd:
    def test_submitted_trace_id_reaches_every_layer(self):
        from repro.service.client import ServiceClient
        from repro.service.server import ServiceInThread

        trace_id = "f" * 32
        service = ServiceInThread(workers=1, slow_job_threshold=None)
        with service:
            with ServiceClient(service.host, service.port) as client:
                # seed 91 keeps the shared result cache out of the way:
                # cache hits skip measurement spans by design.
                job = client.submit_artifact(
                    "figure4", repeats=1, seed=91, trace_id=trace_id
                )
                assert job["trace_id"] == trace_id
                client.wait(job["id"], timeout=120)
        spans = service.server.collector.spans
        categories = {
            s.category for s in spans if s.trace_id == trace_id
        }
        assert {"service", "queue", "scheduler", "executor",
                "measurement"} <= categories
        # measurement spans carried the simulated machine's results
        measures = [
            s for s in spans
            if s.trace_id == trace_id and s.category == "measurement"
        ]
        assert measures
        assert all("measured" in s.attributes for s in measures)

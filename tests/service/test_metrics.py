"""The metrics layer and its Prometheus text exposition."""

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    build_service_registry,
)


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("jobs_total", "Jobs.")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_callback(self):
        gauge = Gauge("depth", "Depth.")
        gauge.set(7)
        assert dict(gauge.samples()) == {"depth": 7}
        live = Gauge("live", "Live.", fn=lambda: 42)
        assert dict(live.samples()) == {"live": 42.0}

    def test_histogram_cumulative_buckets(self):
        hist = Histogram("latency", "Latency.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        samples = dict(hist.samples())
        assert samples['latency_bucket{le="0.1"}'] == 1
        assert samples['latency_bucket{le="1"}'] == 3
        assert samples['latency_bucket{le="10"}'] == 4
        assert samples['latency_bucket{le="+Inf"}'] == 5
        assert samples["latency_count"] == 5
        assert samples["latency_sum"] == pytest.approx(56.05)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("has space", "x")
        with pytest.raises(ValueError):
            Counter("1starts_with_digit", "x")


class TestRegistry:
    def test_render_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "All jobs.").inc(3)
        registry.gauge("repro_depth", "Queue depth.").set(2)
        text = registry.render()
        assert "# HELP repro_jobs_total All jobs.\n" in text
        assert "# TYPE repro_jobs_total counter\n" in text
        assert "\nrepro_jobs_total 3\n" in text
        assert "# TYPE repro_depth gauge\n" in text
        assert text.endswith("\n")

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("twice", "x")
        with pytest.raises(ValueError):
            registry.gauge("twice", "y")

    def test_service_registry_has_the_contract_metrics(self):
        registry = build_service_registry(
            queue_depth=lambda: 4, running=lambda: 1
        )
        text = registry.render()
        for name in (
            "repro_jobs_submitted_total",
            "repro_jobs_coalesced_total",
            "repro_jobs_completed_total",
            "repro_jobs_failed_total",
            "repro_queue_rejected_total",
            "repro_queue_depth",
            "repro_jobs_running",
            "repro_job_duration_seconds",
            "repro_cache_hit_rate",
        ):
            assert f"# TYPE {name} " in text
        assert "repro_queue_depth 4" in text
        assert "repro_jobs_running 1" in text

"""Backpressure, priority ordering, and client fairness of JobQueue."""

import pytest

from repro.service.queue import JobQueue, QueueFull


class TestBackpressure:
    def test_bounded_admission(self):
        queue = JobQueue(max_depth=2)
        queue.push("a")
        queue.push("b")
        with pytest.raises(QueueFull) as err:
            queue.push("c")
        assert err.value.retry_after > 0
        assert err.value.depth == 2
        assert queue.rejected == 1
        assert len(queue) == 2  # the rejected item was not admitted

    def test_admission_resumes_after_pop(self):
        queue = JobQueue(max_depth=1)
        queue.push("a")
        with pytest.raises(QueueFull):
            queue.push("b")
        assert queue.pop() == "a"
        queue.push("b")  # no raise
        assert queue.pop() == "b"

    def test_retry_after_scales_with_saturation(self):
        queue = JobQueue(max_depth=10)
        empty_hint = queue.retry_after_hint()
        for index in range(10):
            queue.push(index)
        assert queue.retry_after_hint() > empty_hint

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)
        queue = JobQueue()
        with pytest.raises(ValueError):
            queue.push("x", priority=99)


class TestOrdering:
    def test_fifo_within_one_client(self):
        queue = JobQueue()
        for index in range(5):
            queue.push(index, client="solo")
        assert [queue.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_priority_classes_drain_in_order(self):
        queue = JobQueue()
        queue.push("batch", priority=9)
        queue.push("normal", priority=5)
        queue.push("urgent", priority=0)
        assert queue.pop() == "urgent"
        assert queue.pop() == "normal"
        assert queue.pop() == "batch"

    def test_round_robin_across_clients(self):
        queue = JobQueue()
        for index in range(4):
            queue.push(f"a{index}", client="alice")
        for index in range(2):
            queue.push(f"b{index}", client="bob")
        served = [queue.pop() for _ in range(6)]
        # bob's two jobs are not starved behind alice's four
        assert served == ["a0", "b0", "a1", "b1", "a2", "a3"]

    def test_fairness_is_per_priority_class(self):
        queue = JobQueue()
        queue.push("a-low", client="alice", priority=9)
        queue.push("b-high", client="bob", priority=0)
        queue.push("a-high", client="alice", priority=0)
        assert [queue.pop() for _ in range(3)] == ["b-high", "a-high", "a-low"]

    def test_pop_empty_returns_none(self):
        assert JobQueue().pop() is None

    def test_iteration_matches_pop_order(self):
        queue = JobQueue()
        queue.push("a0", client="alice")
        queue.push("b0", client="bob")
        queue.push("a1", client="alice")
        order = list(queue)
        assert len(queue) == 3  # iteration does not consume
        assert order == [queue.pop(), queue.pop(), queue.pop()]


class TestWithdrawal:
    def test_remove_queued_item(self):
        queue = JobQueue()
        queue.push("a")
        queue.push("b")
        assert queue.remove("a")
        assert not queue.remove("a")
        assert queue.pop() == "b"
        assert len(queue) == 0

    def test_drain_empties_in_service_order(self):
        queue = JobQueue()
        queue.push("late", priority=9)
        queue.push("early", priority=0)
        assert queue.drain() == ["early", "late"]
        assert len(queue) == 0
        assert queue.pop() is None

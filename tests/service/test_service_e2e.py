"""End-to-end: a live server, the blocking client, and the CLI.

Covers the acceptance criteria: a served artifact is byte-identical to
``repro reproduce`` for the same seed, and two concurrent identical
submissions execute the underlying work exactly once (verified through
scheduler stats).
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.cli import main
from repro.service import (
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceError,
    ServiceInThread,
)


@pytest.fixture(scope="module")
def service():
    with ServiceInThread(workers=1, queue_depth=16) as handle:
        yield handle


@pytest.fixture()
def client(service):
    with ServiceClient(service.host, service.port) as c:
        yield c


class GatedJob:
    """Occupies the single worker until the test releases it."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self):
        self.started.set()
        assert self.release.wait(timeout=30)
        return {"ok": True}


def occupy_worker(service, token):
    """Run a gated job on the service's worker; returns the gate."""
    gated = GatedJob()

    async def submit():
        return service.scheduler.submit(
            token=token, kind="plan", description="test gate", run=gated
        )

    asyncio.run_coroutine_threadsafe(submit(), service.loop).result(timeout=10)
    assert gated.started.wait(timeout=10)
    return gated


class TestBasics:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == PROTOCOL_VERSION
        assert "jobs" in health

    def test_list_artifacts(self, client):
        artifacts = client.list_artifacts()
        ids = {a["id"] for a in artifacts}
        assert "figure4" in ids
        assert "ext:sampling" in ids
        assert all(a["description"] for a in artifacts)

    def test_unknown_artifact_is_a_structured_error(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit_artifact("figure99")
        assert err.value.code == "unknown-artifact"

    def test_unknown_job_is_a_structured_error(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("job-0-missing")
        assert err.value.code == "unknown-job"

    def test_newer_protocol_version_rejected(self, service):
        with socket.create_connection(
            (service.host, service.port), timeout=10
        ) as raw:
            raw.sendall(
                json.dumps({"v": PROTOCOL_VERSION + 1, "op": "health"}).encode()
                + b"\n"
            )
            answer = json.loads(raw.makefile("rb").readline())
        assert answer["ok"] is False
        assert answer["error"]["code"] == "unsupported-version"

    def test_garbage_line_gets_bad_request(self, service):
        with socket.create_connection(
            (service.host, service.port), timeout=10
        ) as raw:
            raw.sendall(b"{{{ not json\n")
            answer = json.loads(raw.makefile("rb").readline())
        assert answer["error"]["code"] == "bad-request"


class TestServedResults:
    def test_served_artifact_matches_reproduce_byte_for_byte(
        self, client, capsys
    ):
        job = client.submit_artifact("figure4", repeats=1, seed=0)
        result = client.wait(job["id"], timeout=300)

        assert main(["reproduce", "figure4", "--repeats", "1", "--seed", "0"]) == 0
        local = capsys.readouterr().out

        served = result["report"] + "\n"
        for note in result["notes"]:
            served += f"note: {note}\n"
        served += "\n"
        assert served == local

    def test_submit_cli_prints_identically_to_reproduce(
        self, service, capsys
    ):
        args = ["--host", service.host, "--port", str(service.port)]
        assert main(["submit", "figure3", "--wait", *args]) == 0
        served = capsys.readouterr().out
        assert main(["reproduce", "figure3"]) == 0
        local = capsys.readouterr().out
        assert served == local

    def test_plan_submission_round_trip(self, client):
        job = client.submit_plan({
            "jobs": [
                {
                    "config": {"processor": "K8", "infra": "pm",
                               "pattern": "rr", "mode": "user", "seed": 5},
                    "benchmark": {"kind": "loop", "args": [1000]},
                    "tags": {"case": "e2e"},
                }
            ]
        })
        result = client.wait(job["id"], timeout=120)
        [row] = result["rows"]
        assert row["case"] == "e2e"
        assert row["expected"] == 3001


class TestConcurrentDedup:
    def test_identical_concurrent_submissions_share_one_execution(
        self, service
    ):
        stats = service.scheduler.stats
        before = stats.as_dict()
        gate = occupy_worker(service, token="dedup-gate")
        try:
            with ServiceClient(service.host, service.port) as c1, \
                 ServiceClient(service.host, service.port) as c2:
                job1 = c1.submit_artifact("figure4", repeats=1, seed=99)
                job2 = c2.submit_artifact("figure4", repeats=1, seed=99)
                assert job1["id"] == job2["id"]  # coalesced in flight
                assert job2["coalesced"] == 1
                gate.release.set()
                result1 = c1.wait(job1["id"], timeout=300)
                result2 = c2.wait(job2["id"], timeout=300)
                assert result1 == result2
        finally:
            gate.release.set()
        after = service.scheduler.stats.as_dict()
        # the two client submissions became ONE queued execution
        assert after["coalesced"] - before["coalesced"] == 1
        assert after["submitted"] - before["submitted"] == 2  # gate + figure4
        assert after["executed"] - before["executed"] == 2

    def test_cancel_a_queued_job(self, service, client):
        gate = occupy_worker(service, token="cancel-gate")
        try:
            job = client.submit_artifact("figure4", repeats=1, seed=123)
            cancelled = client.cancel(job["id"])
            assert cancelled["state"] == "cancelled"
            with pytest.raises(ServiceError) as err:
                client.result(job["id"])
            assert err.value.code == "conflict"
        finally:
            gate.release.set()


class TestMetricsEndpoint:
    def test_metrics_text_is_well_formed(self, client):
        # at least one prior job in this module has completed
        text = client.metrics()
        lines = text.splitlines()
        assert lines, "metrics response is empty"
        for line in lines:
            assert line.startswith("#") or " " in line
        assert "# TYPE repro_jobs_completed_total counter" in lines
        completed = next(
            float(line.split()[1]) for line in lines
            if line.startswith("repro_jobs_completed_total ")
        )
        assert completed >= 1
        assert "# TYPE repro_cache_hit_rate gauge" in lines
        assert any(
            line.startswith('repro_job_duration_seconds_bucket{le="')
            for line in lines
        )

    def test_status_cli_metrics_flag(self, service, capsys):
        assert main([
            "status", "--metrics",
            "--host", service.host, "--port", str(service.port),
        ]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queue_depth gauge" in out


class TestGracefulShutdownE2E:
    def test_shutdown_waits_for_the_mid_flight_job(self):
        with ServiceInThread(workers=1, queue_depth=16) as handle:
            gate = occupy_worker(handle, token="shutdown-gate")
            record = next(iter(handle.scheduler._jobs.values()))
            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            try:
                # shutdown is waiting on the mid-flight job
                assert not record.done_event.is_set()
            finally:
                gate.release.set()
            stopper.join(timeout=30)
            assert not stopper.is_alive()
            assert record.state.value == "done"
            assert record.payload == {"ok": True}

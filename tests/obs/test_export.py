"""Chrome trace_event export and the validator CI runs."""

import json

from repro import obs
from repro.obs.export import (
    chrome_trace_events,
    to_chrome_trace,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.spans import TraceCollector


def collected(n=3):
    collector = TraceCollector()
    with obs.activate(collector):
        with obs.span("root", category="cli"):
            for i in range(n):
                with obs.span(f"job-{i}", category="executor", index=i):
                    pass
    return collector


class TestExport:
    def test_events_are_complete_phase_and_sorted(self):
        events = chrome_trace_events(collected().spans)
        assert len(events) == 4
        assert all(e["ph"] == "X" for e in events)
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert all(e["dur"] >= 0 for e in events)

    def test_args_carry_span_identity_and_attributes(self):
        events = chrome_trace_events(collected(1).spans)
        job = next(e for e in events if e["name"] == "job-0")
        root = next(e for e in events if e["name"] == "root")
        assert job["args"]["index"] == 0
        assert job["args"]["parent_id"] == root["args"]["span_id"]
        assert job["args"]["trace_id"] == root["args"]["trace_id"]

    def test_unfinished_spans_are_skipped(self):
        collector = TraceCollector()
        open_span = collector.start_span("open", category="cli")
        assert open_span.end_us is None
        assert chrome_trace_events([open_span]) == []

    def test_top_level_object_shape(self):
        data = to_chrome_trace(collected())
        assert data["displayTimeUnit"] == "ms"
        assert data["otherData"]["exporter"] == "repro.obs"
        assert data["otherData"]["spans_started"] == 4
        assert validate_chrome_trace(data) == []

    def test_write_and_validate_file(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", collected())
        assert validate_trace_file(path) == []
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == 4


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_rejects_backwards_timestamps(self):
        data = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 1},
        ]}
        problems = validate_chrome_trace(data)
        assert any("backwards" in p for p in problems)

    def test_rejects_negative_duration(self):
        data = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1},
        ]}
        assert any("dur" in p for p in validate_chrome_trace(data))

    def test_rejects_unbalanced_duration_events(self):
        data = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ]}
        assert any("unclosed" in p for p in validate_chrome_trace(data))
        data = {"traceEvents": [
            {"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 1},
        ]}
        assert any("no open" in p for p in validate_chrome_trace(data))

    def test_matched_begin_end_pass(self):
        data = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 3, "pid": 1, "tid": 1},
        ]}
        assert validate_chrome_trace(data) == []

    def test_metadata_events_are_ignored(self):
        data = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1,
             "args": {"name": "repro"}},
            {"name": "a", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
        ]}
        assert validate_chrome_trace(data) == []

    def test_file_validator_surfaces_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert any("not valid JSON" in p for p in validate_trace_file(path))

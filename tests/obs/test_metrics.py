"""Unified metrics: histogram boundary semantics, families, registry."""

import pytest

from repro.obs.metrics import (
    Histogram,
    HistogramFamily,
    MetricsRegistry,
    build_unified_registry,
)


def bucket_counts(histogram: Histogram) -> dict[str, float]:
    return {
        name.split('le="')[1].rstrip('"}'): value
        for name, value in histogram.bucket_samples()
        if "_bucket" in name
    }


class TestHistogramBoundaries:
    """Regression: an observation equal to a bucket's upper bound lands
    in that bucket (Prometheus ``le`` = less-than-or-equal)."""

    def test_boundary_value_lands_in_its_bucket(self):
        histogram = Histogram("h", "test", buckets=(1.0, 2.0, 5.0))
        histogram.observe(2.0)
        counts = bucket_counts(histogram)
        assert counts["1"] == 0
        assert counts["2"] == 1  # le="2" covers exactly 2.0
        assert counts["5"] == 1  # cumulative

    def test_every_bound_is_inclusive(self):
        bounds = (0.001, 0.1, 1.0, 30.0)
        histogram = Histogram("h", "test", buckets=bounds)
        for bound in bounds:
            histogram.observe(bound)
        counts = bucket_counts(histogram)
        # cumulative: the k-th bucket holds the first k observations
        for index, bound in enumerate(bounds):
            assert counts[
                str(int(bound)) if float(bound).is_integer() else repr(bound)
            ] == index + 1

    def test_values_between_and_beyond_buckets(self):
        histogram = Histogram("h", "test", buckets=(1.0, 2.0))
        histogram.observe(1.5)  # between: lands in le="2"
        histogram.observe(99.0)  # beyond: only +Inf
        counts = bucket_counts(histogram)
        assert counts["1"] == 0
        assert counts["2"] == 1
        assert counts["+Inf"] == 2
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(100.5)


class TestBucketValidation:
    def test_duplicate_bounds_rejected(self):
        # Duplicates would render two samples with the same le label.
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "test", buckets=(1.0, 1.0, 2.0))

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "test", buckets=(2.0, 1.0))

    def test_non_finite_bounds_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            Histogram("h", "test", buckets=(1.0, float("inf")))
        with pytest.raises(ValueError, match="finite"):
            Histogram("h", "test", buckets=(float("nan"),))

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", "test", buckets=())


class TestHistogramFamily:
    def test_one_child_per_label_value(self):
        family = HistogramFamily("d", "test", label="artifact",
                                 buckets=(1.0,))
        family.observe(0.5, "figure4")
        family.observe(2.0, "figure4")
        family.observe(0.1, "table1")
        assert family.labels("figure4").count == 2
        assert family.labels("table1").count == 1

    def test_samples_carry_the_label(self):
        family = HistogramFamily("d", "test", label="artifact",
                                 buckets=(1.0,))
        family.observe(0.5, "figure4")
        names = [name for name, _ in family.samples()]
        assert 'd_bucket{artifact="figure4",le="1"}' in names
        assert 'd_count{artifact="figure4"}' in names

    def test_label_values_are_escaped(self):
        family = HistogramFamily("d", "test", label="artifact",
                                 buckets=(1.0,))
        family.observe(0.5, 'we"ird')
        names = [name for name, _ in family.samples()]
        assert any('we\\"ird' in name for name in names)

    def test_registry_renders_families(self):
        registry = MetricsRegistry()
        family = registry.histogram_family(
            "d_seconds", "durations", label="artifact", buckets=(1.0,)
        )
        family.observe(0.5, "figure4")
        text = registry.render()
        assert "# TYPE d_seconds histogram" in text
        assert 'd_seconds_bucket{artifact="figure4",le="1"} 1' in text


class TestUnifiedRegistry:
    def test_unified_instruments_present(self):
        text = build_unified_registry().render()
        for name in (
            "repro_jobs_submitted_total",
            "repro_slow_job_warnings_total",
            "repro_artifact_duration_seconds",
            "repro_executor_jobs",
            "repro_cache_hits",
            "repro_spans_started",
        ):
            assert name in text

    def test_span_gauge_reads_live_counts(self):
        from repro.obs.spans import SPAN_COUNTS

        registry = build_unified_registry()
        gauge = registry.get("repro_spans_started")
        (_, value), = gauge.samples()
        assert value == float(SPAN_COUNTS["started"])

    def test_service_shim_reexports_the_same_objects(self):
        from repro.obs import metrics as obs_metrics
        from repro.service import metrics as service_metrics

        assert service_metrics.Histogram is obs_metrics.Histogram
        assert service_metrics.MetricsRegistry is obs_metrics.MetricsRegistry
        assert (
            service_metrics.build_service_registry
            is obs_metrics.build_unified_registry
        )

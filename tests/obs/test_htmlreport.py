"""``repro report``: self-contained HTML rendering and its validator."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs.htmlreport import (
    expected_svg_count,
    family_of,
    load_run,
    load_trace,
    render_report,
    report_families,
    shard_breakdown,
    trend_series,
    validate_report_text,
    main as validator_main,
)


def bench_file(tmp_path, name, benchmarks, **payload_extra):
    path = tmp_path / name
    path.write_text(json.dumps({"benchmarks": benchmarks, **payload_extra}))
    return path


def entry(name, mean, group=None, data=None, observability=None, **extra):
    stats = {
        "mean": mean, "stddev": mean * 0.1, "min": mean * 0.8,
        "max": mean * 1.2, "median": mean, "q1": mean * 0.9,
        "q3": mean * 1.1, "rounds": len(data) if data else 5,
    }
    if data is not None:
        stats["data"] = data
    out = {
        "name": name, "group": group, "stats": stats, "extra_info": extra,
    }
    if observability is not None:
        out["observability"] = observability
    return out


class TestFamilies:
    def test_group_wins_over_name(self):
        assert family_of({"name": "b1", "group": "loadtest"}) == "loadtest"
        assert family_of({"name": "b1", "group": None}) == "b1"

    def test_union_across_runs_ordered_by_first_appearance(self, tmp_path):
        a = load_run(bench_file(tmp_path, "a.json", [
            entry("x", 1.0, group="g1"), entry("y", 1.0),
        ]))
        b = load_run(bench_file(tmp_path, "b.json", [
            entry("z", 1.0, group="g1"), entry("w", 1.0),
        ]), "B")
        families = report_families([a, b])
        assert list(families) == ["g1", "y", "w"]
        assert families["g1"] == ["x", "z"]

    def test_expected_svg_count_matches(self, tmp_path):
        path = bench_file(tmp_path, "a.json", [
            entry("x", 1.0, group="g"), entry("y", 1.0, group="g"),
            entry("z", 1.0),
        ])
        assert expected_svg_count([path]) == 2


class TestLoad:
    def test_rejects_entryless_files(self, tmp_path):
        path = bench_file(tmp_path, "a.json", [{"not": "a benchmark"}])
        with pytest.raises(ConfigurationError, match="no benchmarks"):
            load_run(path)

    def test_trace_payload_must_have_layers(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{}")
        with pytest.raises(ConfigurationError, match="layers"):
            load_trace(path)


class TestRender:
    def test_one_svg_per_family_and_self_contained(self, tmp_path):
        run = load_run(bench_file(tmp_path, "a.json", [
            entry("x", 1.0, group="g", data=[0.9, 1.0, 1.1]),
            entry("y", 2.0),
        ]))
        text = render_report([run])
        assert validate_report_text(text, expect_svgs=2) == []

    def test_two_runs_render_a_delta_table(self, tmp_path):
        a = load_run(bench_file(tmp_path, "a.json", [entry("x", 1.0)]))
        b = load_run(bench_file(tmp_path, "b.json", [entry("x", 2.0)]), "B")
        text = render_report([a, b])
        assert "A → B delta" in text
        assert "REGRESSED" in text
        assert validate_report_text(text, expect_svgs=1) == []

    def test_three_runs_rejected(self, tmp_path):
        run = load_run(bench_file(tmp_path, "a.json", [entry("x", 1.0)]))
        with pytest.raises(ConfigurationError, match="one or two"):
            render_report([run, run, run])

    def test_metadata_labels_reach_the_header(self, tmp_path):
        run = load_run(bench_file(
            tmp_path, "a.json",
            [entry("x", 1.0, git_sha="cafe1234beef", hostname="box-9")],
        ))
        text = render_report([run])
        assert "cafe1234beef"[:12] in text
        assert "box-9" in text

    def test_content_is_escaped(self, tmp_path):
        run = load_run(bench_file(
            tmp_path, "a.json", [entry("<script>x</script>", 1.0)]
        ))
        text = render_report([run])
        assert "<script>" not in text
        assert validate_report_text(text) == []

    def test_selftime_panel_from_trace_payload(self, tmp_path):
        run = load_run(bench_file(tmp_path, "a.json", [entry("x", 1.0)]))
        trace = {
            "artifact": "figure4",
            "wall_us": 100,
            "layers": [
                {"layer": "cli", "spans": 1, "self_us": 40,
                 "share": 0.4, "instructions": 0},
                {"layer": "measurement", "spans": 2, "self_us": 60,
                 "share": 0.6, "instructions": 1234},
            ],
        }
        text = render_report([run], trace=trace)
        assert "Per-layer self time" in text
        assert "measurement" in text
        assert "1,234" in text

    def test_hit_rate_panel_from_metrics_snapshot(self, tmp_path):
        run = load_run(bench_file(tmp_path, "a.json", [entry(
            "x", 1.0,
            observability={"metrics": {
                "repro_cache_hits": 30.0, "repro_cache_misses": 10.0,
            }},
        )]))
        text = render_report([run])
        assert "hit rates" in text
        assert "75.0%" in text

    def test_shard_panel_from_labelled_samples(self, tmp_path):
        run = load_run(bench_file(tmp_path, "a.json", [entry(
            "x", 1.0,
            observability={"metrics": {
                'repro_requests_total{shard="s0"}': 12.0,
                'repro_requests_total{shard="s1"}': 8.0,
                "repro_cache_hits": 1.0,
            }},
        )]))
        text = render_report([run])
        assert "Fleet shard breakdown" in text
        assert "shard=s0" in text and "shard=s1" in text


class TestShardBreakdown:
    def test_groups_by_shard_label(self):
        shards = shard_breakdown({
            'repro_requests_total{shard="s0"}': 5.0,
            'repro_jobs_completed_total{shard="s0"}': 4.0,
            'repro_requests_total{shard="router"}': 9.0,
        })
        assert shards["s0"]["repro_requests_total"] == 5.0
        assert shards["s0"]["repro_jobs_completed_total"] == 4.0
        assert "router" in shards

    def test_ignores_unlabelled_and_bucket_samples(self):
        shards = shard_breakdown({
            "repro_requests_total": 5.0,
            'repro_latency_bucket{shard="s0",le="1"}': 2.0,
        })
        assert shards == {}


class FakeHistory:
    """Duck-typed stand-in for perfdb History: name -> metric values."""

    def __init__(self, table):
        self.table = table

    def values(self, name, metric):
        return self.table.get(name, {}).get(metric, [])


class TestTrends:
    def test_single_point_has_no_trend(self):
        history = FakeHistory({"x": {"mean": [1.0]}})
        assert trend_series({"x": ["x"]}, history, "mean") == {}

    def test_two_points_make_a_family_sparkline(self):
        history = FakeHistory({
            "x": {"mean": [1.0, 1.1]},
            "y": {"mean": [2.0]},  # too short: dropped from the family
        })
        series = trend_series({"g": ["x", "y"]}, history, "mean")
        assert series == {"g": [("x", [1.0, 1.1])]}

    def test_rendered_trends_stay_self_contained(self, tmp_path):
        run = load_run(bench_file(tmp_path, "a.json", [
            entry("x", 1.0, group="g"), entry("z", 1.0),
        ]))
        history = FakeHistory({
            "x": {"mean": [1.0, 1.2, 1.1]},
            "z": {"mean": [0.5, 0.6]},
        })
        text = render_report([run], history=history)
        assert "Cross-run trends" in text
        # 2 family plots + 2 sparklines, still validator-clean.
        assert validate_report_text(text, expect_svgs=4) == []
        assert text.count('class="spark"') == 2

    def test_no_history_means_no_trend_section(self, tmp_path):
        run = load_run(bench_file(tmp_path, "a.json", [entry("x", 1.0)]))
        assert "Cross-run trends" not in render_report([run])

    def test_flat_series_does_not_divide_by_zero(self, tmp_path):
        run = load_run(bench_file(tmp_path, "a.json", [entry("x", 1.0)]))
        history = FakeHistory({"x": {"mean": [1.0, 1.0, 1.0]}})
        text = render_report([run], history=history)
        assert validate_report_text(text, expect_svgs=2) == []

    def test_cli_report_with_recorded_history(self, tmp_path, capsys):
        hist = tmp_path / "hist"
        for i, mean in enumerate([1.0, 1.05]):
            path = bench_file(tmp_path, f"run{i}.json", [entry("x", mean)])
            assert main(
                ["bench", "record", str(path), "--history", str(hist)]
            ) == 0
        bench = bench_file(tmp_path, "a.json", [entry("x", 1.0)])
        out = tmp_path / "r.html"
        assert main([
            "report", str(bench), "-o", str(out), "--history", str(hist),
        ]) == 0
        text = out.read_text()
        assert "Cross-run trends" in text
        assert validate_report_text(text, expect_svgs=2) == []
        capsys.readouterr()


class TestValidator:
    def test_flags_external_references(self):
        text = (
            "<!DOCTYPE html><html><head></head><body>"
            '<img src="https://example.com/x.png">'
            "</body></html>"
        )
        problems = validate_report_text(text)
        assert any("external" in p for p in problems)

    def test_flags_script_elements(self):
        text = (
            "<!DOCTYPE html><html><head><script>1</script></head>"
            "<body></body></html>"
        )
        problems = validate_report_text(text)
        assert any("<script>" in p for p in problems)

    def test_flags_missing_doctype(self):
        problems = validate_report_text("<html><body></body></html>")
        assert any("DOCTYPE" in p for p in problems)

    def test_flags_wrong_svg_count(self):
        text = "<!DOCTYPE html><html><body><svg></svg></body></html>"
        problems = validate_report_text(text, expect_svgs=3)
        assert any("expected 3" in p for p in problems)

    def test_module_main_exit_codes(self, tmp_path, capsys):
        bench = bench_file(tmp_path, "a.json", [entry("x", 1.0)])
        out = tmp_path / "r.html"
        assert main(["report", str(bench), "-o", str(out)]) == 0
        assert validator_main([str(out), str(bench)]) == 0
        assert validator_main([str(out), "--expect-svgs", "9"]) == 1
        assert validator_main([str(tmp_path / "missing.html")]) == 2
        capsys.readouterr()


class TestCli:
    def test_report_single_run(self, tmp_path, capsys):
        bench = bench_file(tmp_path, "a.json", [entry("x", 1.0)])
        out = tmp_path / "r.html"
        assert main(["report", str(bench), "-o", str(out)]) == 0
        assert "self-contained" in capsys.readouterr().out
        assert validate_report_text(out.read_text(), expect_svgs=1) == []

    def test_report_three_runs_exit_two(self, tmp_path, capsys):
        bench = bench_file(tmp_path, "a.json", [entry("x", 1.0)])
        assert main(["report"] + [str(bench)] * 3) == 2
        assert "one or two" in capsys.readouterr().err

    def test_report_missing_file_exit_two(self, tmp_path, capsys):
        assert main(
            ["report", str(tmp_path / "no.json"),
             "-o", str(tmp_path / "r.html")]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_with_trace_and_title(self, tmp_path, capsys):
        bench = bench_file(tmp_path, "a.json", [entry("x", 1.0)])
        trace = tmp_path / "t.json"
        trace.write_text(json.dumps({
            "artifact": "figure4", "wall_us": 10,
            "layers": [{"layer": "cli", "spans": 1, "self_us": 10,
                        "share": 1.0, "instructions": 0}],
        }))
        out = tmp_path / "r.html"
        assert main([
            "report", str(bench), "-o", str(out),
            "--trace", str(trace), "--title", "nightly",
        ]) == 0
        text = out.read_text()
        assert "nightly" in text and "Per-layer self time" in text
        capsys.readouterr()

"""Structured logging: JSON lines, stderr-or-file, env configuration."""

import io
import json

import pytest

from repro.obs.logging import (
    NULL_LOGGER,
    StructuredLogger,
    configure_logging,
    get_logger,
    reset_logging,
)


@pytest.fixture(autouse=True)
def _fresh_logging(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    reset_logging()
    yield
    reset_logging()


def lines_of(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEmission:
    def test_one_json_object_per_line_with_envelope(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream)
        logger.info("job.done", job="j1", run_seconds=1.25)
        logger.warning("job.slow", job="j2")
        records = lines_of(stream)
        assert [r["event"] for r in records] == ["job.done", "job.slow"]
        assert records[0]["level"] == "info"
        assert records[0]["job"] == "j1"
        assert records[1]["level"] == "warning"
        assert all(isinstance(r["ts"], float) for r in records)

    def test_bound_fields_appear_on_every_line(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream).bind(trace_id="t" * 32)
        logger.info("a")
        logger.error("b", detail="x")
        records = lines_of(stream)
        assert all(r["trace_id"] == "t" * 32 for r in records)
        assert records[1]["detail"] == "x"

    def test_unknown_level_downgrades_to_info(self):
        stream = io.StringIO()
        StructuredLogger(stream=stream).log("shout", "e")
        assert lines_of(stream)[0]["level"] == "info"

    def test_non_json_values_are_stringified(self):
        stream = io.StringIO()
        StructuredLogger(stream=stream).info("e", obj=object())
        assert "object object" in lines_of(stream)[0]["obj"]

    def test_null_logger_writes_nothing(self, capsys):
        NULL_LOGGER.error("should-not-appear", anything=1)
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_default_stream_is_stderr_not_stdout(self, capsys):
        StructuredLogger().info("on-stderr")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert json.loads(captured.err)["event"] == "on-stderr"

    def test_file_mode_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        logger = StructuredLogger(path=str(path))
        logger.info("first")
        logger.info("second")
        events = [json.loads(line)["event"]
                  for line in path.read_text().splitlines()]
        assert events == ["first", "second"]

    def test_unwritable_file_does_not_raise(self, tmp_path):
        logger = StructuredLogger(path=str(tmp_path / "no" / "dir.jsonl"))
        logger.info("dropped")  # must not raise


class TestConfiguration:
    def test_default_is_null(self):
        assert get_logger() is NULL_LOGGER

    def test_env_stderr_values(self, monkeypatch):
        for value in ("1", "true", "stderr", "-"):
            monkeypatch.setenv("REPRO_LOG", value)
            reset_logging()
            logger = get_logger()
            assert logger.enabled and logger.path is None

    def test_env_off_values(self, monkeypatch):
        for value in ("0", "false", "off", ""):
            monkeypatch.setenv("REPRO_LOG", value)
            reset_logging()
            assert get_logger() is NULL_LOGGER

    def test_env_path_value(self, monkeypatch, tmp_path):
        target = str(tmp_path / "svc.jsonl")
        monkeypatch.setenv("REPRO_LOG", target)
        reset_logging()
        assert get_logger().path == target

    def test_configure_logging_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "0")
        configure_logging(enabled=True)
        assert get_logger().enabled
        configure_logging(enabled=False)
        assert get_logger() is NULL_LOGGER

"""Per-layer breakdown: self-time decomposition and the table."""

import json

import pytest

from repro.obs.report import (
    layer_breakdown,
    layer_breakdown_payload,
    render_layer_payload,
    render_layer_table,
    self_times_us,
    total_us,
)
from repro.obs.spans import Span


def make_span(name, category, start, end, span_id, parent_id=None, **attrs):
    return Span(
        name=name, category=category, trace_id="t" * 32, span_id=span_id,
        parent_id=parent_id, start_us=start, end_us=end, attributes=attrs,
    )


def nested_spans():
    """cli(0..100) > executor(10..90) > measurement(20..80)."""
    return [
        make_span("run", "cli", 0, 100, "a" * 16),
        make_span("map", "executor", 10, 90, "b" * 16, "a" * 16),
        make_span("measure", "measurement", 20, 80, "c" * 16, "b" * 16,
                  instructions=1234),
    ]


class TestDecomposition:
    def test_self_time_subtracts_direct_children(self):
        own = self_times_us(nested_spans())
        assert own["a" * 16] == 20  # 100 - 80
        assert own["b" * 16] == 20  # 80 - 60
        assert own["c" * 16] == 60

    def test_self_time_clamped_at_zero(self):
        # A child longer than its parent (clock skew) must not go negative.
        spans = [
            make_span("p", "cli", 0, 10, "a" * 16),
            make_span("c", "executor", 0, 50, "b" * 16, "a" * 16),
        ]
        assert self_times_us(spans)["a" * 16] == 0

    def test_total_is_root_durations_only(self):
        assert total_us(nested_spans()) == 100

    def test_orphan_parents_count_as_roots(self):
        spans = [make_span("x", "cli", 0, 30, "a" * 16, "missing-parent")]
        assert total_us(spans) == 30

    def test_rows_sum_to_wall_time_when_fully_nested(self):
        spans = nested_spans()
        rows = layer_breakdown(spans)
        assert sum(row.self_us for row in rows) == total_us(spans)


class TestBreakdown:
    def test_layers_ordered_outermost_first(self):
        rows = layer_breakdown(nested_spans())
        assert [row.layer for row in rows] == [
            "cli", "executor", "measurement"
        ]

    def test_instruction_attribution(self):
        rows = {row.layer: row for row in layer_breakdown(nested_spans())}
        assert rows["measurement"].instructions == 1234
        assert rows["cli"].instructions == 0

    def test_render_contains_rows_total_and_wall_time(self):
        table = render_layer_table(nested_spans())
        assert "layer" in table and "instructions" in table
        assert "measurement" in table
        assert "total" in table
        assert "traced wall time: 0.0001 s" in table
        assert "1,234" in table

    def test_render_handles_empty_trace(self):
        table = render_layer_table([])
        assert "traced wall time: 0.0000 s" in table


class TestPayload:
    """The JSON payload behind ``repro trace --json``."""

    def test_table_formats_exactly_the_payload(self):
        # The equality 'repro trace' vs 'repro trace --json' rests on:
        # the table is a pure rendering of the payload.
        spans = nested_spans()
        payload = layer_breakdown_payload(spans)
        assert render_layer_payload(payload) == render_layer_table(spans)

    def test_payload_shape_and_shares(self):
        payload = layer_breakdown_payload(nested_spans())
        assert payload["wall_us"] == 100
        layers = {row["layer"]: row for row in payload["layers"]}
        assert layers["cli"]["self_us"] == 20
        assert layers["cli"]["share"] == pytest.approx(0.2)
        assert layers["measurement"]["instructions"] == 1234
        assert payload["total"]["self_us"] == 100
        assert payload["total"]["share"] == pytest.approx(1.0)

    def test_payload_is_json_safe(self):
        payload = layer_breakdown_payload(nested_spans())
        assert json.loads(json.dumps(payload)) == payload

"""Span API: ambient activation, nesting, carriers, bounds."""

import pickle

from repro import obs
from repro.obs.spans import (
    SPAN_COUNTS,
    Span,
    Timebase,
    TraceCollector,
    TraceContext,
    new_span_id,
    new_trace_id,
)


class TestIdentifiers:
    def test_trace_and_span_id_shapes(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0
        assert new_trace_id() != trace_id

    def test_mint_respects_given_trace_id(self):
        context = TraceContext.mint("a" * 32)
        assert context.trace_id == "a" * 32
        assert len(context.span_id) == 16

    def test_context_wire_roundtrip(self):
        context = TraceContext.mint()
        assert TraceContext.from_wire(context.to_wire()) == context


class TestNoop:
    def test_span_without_collector_is_noop(self):
        handle = obs.span("anything", category="cli", k=1)
        with handle as sp:
            assert sp.set(more=2) is sp  # chainable, stateless
        assert obs.current_collector() is None

    def test_carrier_without_collector_is_none(self):
        assert obs.carrier() is None


class TestNesting:
    def test_parent_child_links_and_categories(self):
        collector = TraceCollector()
        with obs.activate(collector):
            with obs.span("outer", category="cli") as outer:
                with obs.span("inner", category="executor") as inner:
                    pass
        spans = {s.name: s for s in collector.spans}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].trace_id == spans["outer"].trace_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].category == "executor"
        # inner finished first, and both have sane timing
        assert spans["inner"].start_us >= spans["outer"].start_us
        assert spans["inner"].end_us <= spans["outer"].end_us

    def test_explicit_context_roots_the_tree(self):
        collector = TraceCollector()
        root = TraceContext.mint("b" * 32)
        with obs.activate(collector, context=root):
            with obs.span("child", category="queue"):
                pass
        (span,) = collector.spans
        assert span.trace_id == "b" * 32
        assert span.parent_id == root.span_id

    def test_exception_recorded_and_span_finished(self):
        collector = TraceCollector()
        try:
            with obs.activate(collector):
                with obs.span("boom", category="cli"):
                    raise ValueError("nope")
        except ValueError:
            pass
        (span,) = collector.spans
        assert span.attributes["error"] == "ValueError"
        assert span.end_us is not None

    def test_attributes_set_mid_span(self):
        collector = TraceCollector()
        with obs.activate(collector):
            with obs.span("work", category="cli", a=1) as sp:
                sp.set(b=2)
        (span,) = collector.spans
        assert span.attributes == {"a": 1, "b": 2}


class TestCollector:
    def test_bounded_with_drop_accounting(self):
        collector = TraceCollector(max_spans=2)
        dropped_before = SPAN_COUNTS["dropped"]
        with obs.activate(collector):
            for i in range(4):
                with obs.span(f"s{i}", category="cli"):
                    pass
        assert len(collector) == 2
        assert collector.dropped == 2
        assert collector.started == 4
        assert SPAN_COUNTS["dropped"] == dropped_before + 2

    def test_add_span_retroactive(self):
        collector = TraceCollector()
        parent = TraceContext.mint()
        span = collector.add_span(
            "queue-wait", "queue", 100, 250, parent=parent,
            attributes={"job": "j1"},
        )
        assert span.trace_id == parent.trace_id
        assert span.parent_id == parent.span_id
        assert span.duration_us == 150
        assert collector.spans[0].attributes == {"job": "j1"}

    def test_wire_absorb_roundtrip_preserves_ids(self):
        source = TraceCollector()
        with obs.activate(source):
            with obs.span("a", category="executor"):
                with obs.span("b", category="measurement"):
                    pass
        sink = TraceCollector()
        sink.absorb(source.wire())
        assert {s.span_id for s in sink.spans} == {
            s.span_id for s in source.spans
        }
        assert sink.spans[0].attributes == source.spans[0].attributes


class TestCarrier:
    def test_carrier_is_picklable_and_rebuilds_state(self):
        collector = TraceCollector(timebase=Timebase(epoch=1000.0))
        with obs.activate(collector, retirements=True):
            with obs.span("parent", category="executor") as parent:
                capsule = pickle.loads(pickle.dumps(obs.carrier()))
        rebuilt, context, retirements = obs.collector_from_carrier(capsule)
        assert rebuilt.timebase.epoch == 1000.0
        assert context == parent.context
        assert retirements is True

    def test_worker_spans_parent_across_the_boundary(self):
        # Simulates what ParallelExecutor does: carrier out, spans back.
        coordinator = TraceCollector()
        with obs.activate(coordinator):
            with obs.span("executor.map", category="executor") as outer:
                capsule = obs.carrier()
        worker, context, _ = obs.collector_from_carrier(capsule)
        with obs.activate(worker, context=context):
            with obs.span("job", category="executor"):
                pass
        coordinator.absorb(worker.wire())
        by_name = {s.name: s for s in coordinator.spans}
        assert by_name["job"].parent_id == outer.span_id
        assert by_name["job"].trace_id == by_name["executor.map"].trace_id


class TestSpanWire:
    def test_span_wire_roundtrip(self):
        span = Span(
            name="n", category="c", trace_id="t" * 32, span_id="s" * 16,
            parent_id=None, start_us=1, end_us=5, attributes={"k": "v"},
        )
        clone = Span.from_wire(span.to_wire())
        assert clone.to_wire() == span.to_wire()
        assert clone.duration_us == 4

"""Dedicated tests for Machine construction variants."""

import pytest

from dataclasses import replace

from repro.cpu.frequency import Governor
from repro.cpu.models import microarch
from repro.errors import ConfigurationError
from repro.kernel.calibration import PERFCTR_BUILD, VANILLA_BUILD
from repro.kernel.system import Machine


class TestCustomBuilds:
    def test_custom_build_instance_accepted(self):
        build = replace(PERFCTR_BUILD, name="perfctr-custom", hz=500)
        machine = Machine(kernel=build, io_interrupts=False)
        assert machine.build.hz == 500
        assert machine.kernel_name == "perfctr-custom"

    def test_custom_perfctr_build_installs_extension(self):
        build = replace(PERFCTR_BUILD, name="perfctr-hz100", hz=100)
        machine = Machine(kernel=build, io_interrupts=False)
        assert machine.extension is not None
        assert machine.substrate_name == "perfctr"

    def test_custom_vanilla_build_has_no_extension(self):
        build = replace(VANILLA_BUILD, name="vanilla-x")
        machine = Machine(kernel=build, io_interrupts=False)
        assert machine.extension is None
        assert machine.substrate_name is None


class TestCustomProcessors:
    def test_microarch_instance_accepted(self):
        flat = replace(microarch("K8"), alias_penalties=(0.0,))
        machine = Machine(processor=flat, kernel="perfmon",
                          io_interrupts=False)
        assert machine.uarch.alias_penalties == (0.0,)
        assert machine.processor_key == "K8"

    def test_skid_follows_uarch_key(self):
        machine = Machine(processor=microarch("PD"), kernel="perfctr",
                          io_interrupts=False)
        expected = machine.build.skid_for("PD")
        assert machine.core.skid_bias == expected.bias
        assert machine.core.skid_magnitude == expected.magnitude


class TestBootOptions:
    def test_loop_warmup_flag(self):
        warm = Machine(io_interrupts=False, loop_warmup=True)
        cold = Machine(io_interrupts=False, loop_warmup=False)
        assert warm.core.loop_warmup_cycles > 0
        assert cold.core.loop_warmup_cycles == 0.0

    def test_governor_forwarded(self):
        machine = Machine(processor="PD", governor=Governor.POWERSAVE,
                          io_interrupts=False)
        assert machine.core.freq.current_hz == min(
            machine.uarch.p_states_hz()
        )

    @pytest.mark.parametrize(
        "kernel,expected", [("perfctr", "perfctr"), ("perfmon", "perfmon"),
                            ("vanilla", None)]
    )
    def test_substrate_name(self, kernel, expected):
        assert Machine(kernel=kernel, io_interrupts=False).substrate_name == expected

    def test_unknown_kernel_string_still_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            Machine(kernel="hurd")

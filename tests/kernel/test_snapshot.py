"""Boot snapshots: exact restore, LRU bounds, store accounting.

The invariant that matters: a machine booted from a snapshot image is
indistinguishable from a cold boot — same chunks, same random stream,
same measured counts.  Everything else here is bookkeeping (hits,
misses, evictions, the env kill-switch).
"""

import pickle

import pytest

from repro.core.benchmarks import NullBenchmark
from repro.core.config import MeasurementConfig
from repro.core.measurement import run_measurement
from repro.errors import ConfigurationError
from repro.kernel import snapshot as snapshot_mod
from repro.kernel.calibration import KERNEL_BUILDS, KernelBuildConfig
from repro.kernel.snapshot import (
    BootImage,
    KernelChunkSet,
    SnapshotStore,
    boot_image,
    configure_default_store,
)
from repro.kernel.system import Machine


@pytest.fixture(autouse=True)
def fresh_default_store():
    configure_default_store(enabled=True)
    yield
    configure_default_store(enabled=True)


class TestBootImage:
    def test_capture_resolves_registries(self):
        image = BootImage.capture("CD", "perfctr")
        assert image.uarch.key == "CD"
        assert image.build is KERNEL_BUILDS["perfctr"]
        assert image.chunks.ext_tick_hook is not None

    def test_unknown_kernel_build_message_is_preserved(self):
        with pytest.raises(ConfigurationError, match="unknown kernel build"):
            BootImage.capture("CD", "bogus")

    def test_unknown_processor_message_is_preserved(self):
        with pytest.raises(ConfigurationError, match="unknown processor"):
            BootImage.capture("Z80", "perfctr")

    def test_vanilla_build_has_no_ext_hook(self):
        image = BootImage.capture("CD", "vanilla")
        assert image.chunks.ext_tick_hook is None

    def test_image_is_picklable(self):
        image = BootImage.capture("K8", "perfmon")
        clone = pickle.loads(pickle.dumps(image))
        assert clone.build.name == "perfmon"
        assert clone.chunks.timer_tick.work == image.chunks.timer_tick.work

    def test_chunk_set_matches_build_costs(self):
        build = KERNEL_BUILDS["perfmon"]
        chunks = KernelChunkSet.for_build(build)
        assert chunks.syscall_entry == build.costs.syscall_entry_chunk()
        assert chunks.context_switch == build.costs.context_switch_chunk()


class TestSnapshotBootEquivalence:
    def test_snapshot_boot_equals_cold_boot(self):
        """The load-bearing claim: image boots replay the cold boot."""
        image = BootImage.capture("CD", "perfctr")
        for seed in (0, 7, 123):
            configure_default_store(enabled=False)
            cold = Machine(processor="CD", kernel="perfctr", seed=seed)
            warm = Machine(seed=seed, image=image)
            # Identical post-boot random state → identical futures.
            assert (
                cold.rng.bit_generator.state == warm.rng.bit_generator.state
            )
            assert cold.controller.next_timer_s == warm.controller.next_timer_s
            assert cold.controller.next_io_s == warm.controller.next_io_s

    def test_measurements_identical_with_store_on_and_off(self):
        config = MeasurementConfig(seed=11)
        configure_default_store(enabled=True)
        with_store = [
            run_measurement(config, NullBenchmark()).deltas for _ in range(3)
        ]
        configure_default_store(enabled=False)
        without = run_measurement(config, NullBenchmark()).deltas
        assert all(deltas == without for deltas in with_store)

    def test_explicit_image_overrides_template_args(self):
        image = boot_image("K8", "perfmon")
        machine = Machine(processor="CD", kernel="perfctr", image=image)
        assert machine.processor_key == "K8"
        assert machine.kernel_name == "perfmon"


class TestSnapshotStore:
    def test_hits_after_first_capture(self):
        store = SnapshotStore()
        first = store.image("CD", "perfctr")
        second = store.image("CD", "perfctr")
        assert first is second
        assert store.stats.hits == 1
        assert store.stats.misses == 1
        assert store.stats.lookups == 2

    def test_lru_eviction_drops_oldest_template(self):
        store = SnapshotStore(max_entries=2)
        store.image("CD", "perfctr")
        store.image("CD", "perfmon")
        store.image("CD", "vanilla")  # evicts ("CD", "perfctr")
        assert len(store) == 2
        assert store.stats.evictions == 1
        store.image("CD", "perfctr")  # must re-capture
        assert store.stats.misses == 4

    def test_lookup_refreshes_recency(self):
        store = SnapshotStore(max_entries=2)
        store.image("CD", "perfctr")
        store.image("CD", "perfmon")
        store.image("CD", "perfctr")  # touch: perfmon is now LRU
        store.image("CD", "vanilla")
        store.image("CD", "perfctr")
        assert store.stats.hits == 2

    def test_custom_build_objects_bypass_the_store(self):
        store = SnapshotStore()
        build = KernelBuildConfig(name="perfctr-hz100", hz=100)
        first = store.image("CD", build)
        second = store.image("CD", build)
        assert first is not second
        assert store.stats.lookups == 0
        assert len(store) == 0

    def test_bound_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="max_entries"):
            SnapshotStore(max_entries=0)

    def test_machine_boots_hit_the_default_store(self):
        store = configure_default_store(enabled=True)
        Machine(seed=1)
        Machine(seed=2)
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_env_kill_switch_disables_the_store(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOTS", "off")
        monkeypatch.setattr(snapshot_mod, "_default", snapshot_mod._UNSET)
        assert snapshot_mod.default_store() is None
        # boot_image still works, capturing fresh every time.
        a = boot_image("CD", "perfctr")
        b = boot_image("CD", "perfctr")
        assert a is not b

"""Unit tests for repro.kernel.scheduler and threads."""

import pytest

from repro.errors import MachineStateError
from repro.isa.work import WorkVector
from repro.kernel.system import Machine


def ticks(machine: Machine, n: int) -> None:
    period = machine.core.freq.current_hz / machine.build.hz
    machine.core.retire(WorkVector.zero(), cycles=(n + 0.5) * period)


class TestSpawn:
    def test_main_thread_exists(self):
        machine = Machine(io_interrupts=False)
        assert machine.current_thread.name == "main"

    def test_tids_unique(self):
        machine = Machine(io_interrupts=False)
        t1 = machine.scheduler.spawn("a")
        t2 = machine.scheduler.spawn("b")
        assert t1.tid != t2.tid

    def test_bad_quantum(self):
        with pytest.raises(MachineStateError, match="quantum"):
            Machine(quantum_ticks=0)


class TestRoundRobin:
    def test_single_thread_never_switches(self):
        machine = Machine(seed=1, io_interrupts=False, quantum_ticks=2)
        ticks(machine, 20)
        assert machine.scheduler.switches == 0

    def test_two_threads_alternate(self):
        machine = Machine(seed=1, io_interrupts=False, quantum_ticks=2)
        other = machine.scheduler.spawn("worker")
        ticks(machine, 4)
        assert machine.scheduler.switches >= 1
        assert machine.current_thread in (machine.main_thread, other)

    def test_quantum_controls_switch_rate(self):
        fast = Machine(seed=1, io_interrupts=False, quantum_ticks=1)
        fast.scheduler.spawn("w")
        slow = Machine(seed=1, io_interrupts=False, quantum_ticks=10)
        slow.scheduler.spawn("w")
        ticks(fast, 20)
        ticks(slow, 20)
        assert fast.scheduler.switches > slow.scheduler.switches

    def test_exit_thread_switches_away(self):
        machine = Machine(seed=1, io_interrupts=False, quantum_ticks=2)
        other = machine.scheduler.spawn("worker")
        machine.scheduler.exit_thread(machine.main_thread)
        assert machine.current_thread is other

    def test_exit_last_thread(self):
        machine = Machine(seed=1, io_interrupts=False)
        machine.scheduler.exit_thread(machine.main_thread)
        with pytest.raises(MachineStateError, match="no runnable"):
            machine.current_thread


class TestSwitchListeners:
    def test_listener_called_with_both_threads(self):
        machine = Machine(seed=1, io_interrupts=False, quantum_ticks=1)
        machine.scheduler.spawn("worker")
        calls = []
        machine.scheduler.add_switch_listener(
            lambda prev, nxt: calls.append((prev.name, nxt.name))
        )
        ticks(machine, 2)
        assert calls
        assert calls[0][0] != calls[0][1]

    def test_switch_retires_kernel_work(self):
        machine = Machine(seed=1, io_interrupts=False, quantum_ticks=1)
        machine.scheduler.spawn("worker")
        from repro.cpu.events import Event, PrivFilter
        from repro.cpu.pmu import CounterConfig

        # Use the last counter so perfctr's own hooks don't disturb it.
        idx = machine.core.pmu.n_programmable - 1
        machine.core.pmu.program(
            idx, CounterConfig(Event.INSTR_RETIRED, PrivFilter.OS, True)
        )
        baseline_ticks = 3
        ticks(machine, baseline_ticks)
        counted = machine.core.pmu.read(idx)
        floor = baseline_ticks * machine.build.tick_instructions()
        assert counted >= floor + machine.build.costs.context_switch

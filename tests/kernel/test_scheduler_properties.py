"""Property tests of scheduling fairness and counter conservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.events import Event, PrivFilter
from repro.isa.work import WorkVector
from repro.kernel.system import Machine

SETTINGS = settings(max_examples=15, deadline=None)


def run_ticks(machine: Machine, n: int) -> None:
    period = machine.core.freq.current_hz / machine.build.hz
    machine.core.retire(WorkVector.zero(), cycles=(n + 0.6) * period)


class TestFairness:
    @SETTINGS
    @given(
        n_threads=st.integers(2, 5),
        quantum=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_round_robin_visits_every_thread(self, n_threads, quantum, seed):
        machine = Machine(processor="CD", kernel="vanilla", seed=seed,
                          io_interrupts=False, quantum_ticks=quantum)
        threads = [machine.main_thread]
        for index in range(n_threads - 1):
            threads.append(machine.scheduler.spawn(f"w{index}"))
        seen = set()
        # Observe after every tick across three full rotations.
        for _ in range(3 * n_threads * quantum + 2):
            seen.add(machine.current_thread.tid)
            run_ticks(machine, 1)
        assert seen == {t.tid for t in threads}

    @SETTINGS
    @given(quantum=st.integers(1, 5), seed=st.integers(0, 1000))
    def test_switch_count_matches_quantum(self, quantum, seed):
        machine = Machine(processor="CD", kernel="vanilla", seed=seed,
                          io_interrupts=False, quantum_ticks=quantum)
        machine.scheduler.spawn("other")
        total_ticks = quantum * 10
        run_ticks(machine, total_ticks)
        expected = machine.controller.ticks_delivered // quantum
        assert abs(machine.scheduler.switches - expected) <= 1


class TestConservation:
    @SETTINGS
    @given(seed=st.integers(0, 500), quantum=st.integers(1, 3))
    def test_virtual_counts_conserve_total_work(self, seed, quantum):
        """With both threads monitored, the sum of the two virtual
        user-mode counts equals all retired user work, regardless of
        how the scheduler sliced it."""
        machine = Machine(processor="K8", kernel="perfctr", seed=seed,
                          io_interrupts=False, quantum_ticks=quantum)
        machine.core.skid_probability = 0.0
        other = machine.scheduler.spawn("other")
        from repro.perfctr.kext import VPerfctrControl

        # Monitor both threads kernel-side (avoids driving user libs
        # per thread): install states directly through the kext API.
        kext = machine.extension
        control = VPerfctrControl(
            events=((Event.INSTR_RETIRED, PrivFilter.USR),)
        )
        work_per_thread = {machine.main_thread.tid: 0, other.tid: 0}
        # Open+control for the main thread via syscalls.
        machine.syscall(333)
        machine.syscall(334, control)
        # Run and track which thread retires what.
        period = machine.core.freq.current_hz / machine.build.hz
        for _ in range(12):
            current = machine.current_thread
            machine.core.retire(
                WorkVector(instructions=10_000), cycles=1.1 * period
            )
            work_per_thread[current.tid] += 10_000
        # Read main's virtual count once main is scheduled again.
        while machine.current_thread is not machine.main_thread:
            machine.core.retire(WorkVector.zero(), cycles=period)
        state = kext.state_of(machine.main_thread)
        hw = machine.core.pmu.read(0)
        virtual = state.sums[0] + (hw - state.start_values[0])
        # Main's virtual count covers main's work plus only the small
        # syscall stubs — never the other thread's work.
        own = work_per_thread[machine.main_thread.tid]
        assert own <= virtual <= own + 200

"""Unit tests for repro.kernel.syscalls and the Machine round trip."""

import pytest

from repro.cpu.events import Event, PrivFilter, PrivLevel
from repro.cpu.pmu import CounterConfig
from repro.errors import ConfigurationError, MachineStateError, SyscallError
from repro.kernel.syscalls import SyscallTable
from repro.kernel.system import Machine


class TestSyscallTable:
    def test_register_and_dispatch(self):
        table = SyscallTable()
        table.register(400, "do_thing", lambda x: x + 1)
        assert table.dispatch(400, 41) == 42
        assert table.invocations[400] == 1

    def test_duplicate_number_rejected(self):
        table = SyscallTable()
        table.register(400, "a", lambda: None)
        with pytest.raises(SyscallError, match="already registered"):
            table.register(400, "b", lambda: None)

    def test_unknown_number(self):
        with pytest.raises(SyscallError, match="unknown syscall"):
            SyscallTable().dispatch(999)

    def test_name_lookup(self):
        table = SyscallTable()
        table.register(7, "seven", lambda: None)
        assert table.name_of(7) == "seven"
        assert table.registered() == {7: "seven"}


class TestMachineSyscall:
    def test_round_trip_returns_handler_value(self):
        machine = Machine(io_interrupts=False)
        machine.syscalls.register(500, "echo", lambda v: v * 2)
        assert machine.syscall(500, 21) == 42

    def test_mode_restored_after_syscall(self):
        machine = Machine(io_interrupts=False)
        machine.syscalls.register(500, "noop", lambda: None)
        machine.syscall(500)
        assert machine.core.mode is PrivLevel.USER

    def test_mode_restored_after_handler_failure(self):
        machine = Machine(io_interrupts=False)

        def boom():
            raise SyscallError("nope")

        machine.syscalls.register(501, "boom", boom)
        with pytest.raises(SyscallError):
            machine.syscall(501)
        assert machine.core.mode is PrivLevel.USER

    def test_nested_syscall_rejected(self):
        machine = Machine(io_interrupts=False)
        machine.syscalls.register(502, "inner", lambda: None)
        machine.syscalls.register(
            503, "outer", lambda: machine.syscall(502)
        )
        with pytest.raises(MachineStateError, match="kernel mode"):
            machine.syscall(503)

    def test_entry_exit_paths_visible_to_os_counter(self):
        machine = Machine(kernel="vanilla", io_interrupts=False)
        machine.syscalls.register(504, "noop", lambda: None)
        pmu = machine.core.pmu
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.OS, True))
        machine.syscall(504)
        costs = machine.build.costs
        # entry + exit + the sysexit instruction
        assert pmu.read(0) == costs.syscall_entry + costs.syscall_exit + 1

    def test_user_counter_sees_only_trap_instruction(self):
        machine = Machine(kernel="vanilla", io_interrupts=False)
        machine.syscalls.register(505, "noop", lambda: None)
        pmu = machine.core.pmu
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR, True))
        machine.syscall(505)
        assert pmu.read(0) == 1  # the sysenter retires at user level


class TestMachineConstruction:
    def test_unknown_kernel(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            Machine(kernel="solaris")

    def test_unknown_processor(self):
        with pytest.raises(ConfigurationError, match="unknown processor"):
            Machine(processor="G5")

    @pytest.mark.parametrize(
        "kernel,ext_name",
        [("perfctr", "perfctr"), ("perfmon", "perfmon"), ("vanilla", None)],
    )
    def test_extension_installed(self, kernel, ext_name):
        machine = Machine(kernel=kernel, io_interrupts=False)
        if ext_name is None:
            assert machine.extension is None
        else:
            assert machine.extension.name == ext_name

    def test_boots_in_user_mode(self):
        assert Machine(io_interrupts=False).core.mode is PrivLevel.USER

    def test_properties(self):
        machine = Machine(processor="K8", kernel="perfmon", io_interrupts=False)
        assert machine.processor_key == "K8"
        assert machine.kernel_name == "perfmon"

"""Unit tests for repro.kernel.kcode and repro.kernel.calibration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.kernel.calibration import (
    KERNEL_BUILDS,
    KernelBuildConfig,
    PERFCTR_BUILD,
    PERFMON_BUILD,
    SkidConfig,
    VANILLA_BUILD,
)
from repro.kernel.kcode import KernelCosts, kernel_chunk


class TestKernelChunk:
    @given(n=st.integers(0, 100_000))
    def test_exact_instruction_total(self, n):
        assert kernel_chunk(n, "x").work.instructions == n

    def test_kernel_mix_present(self):
        work = kernel_chunk(1000, "x").work
        assert work.branches == 120
        assert work.loads == 220
        assert work.stores == 140

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot have"):
            kernel_chunk(-1, "bad")

    def test_label_preserved(self):
        assert kernel_chunk(10, "kernel:foo").label == "kernel:foo"


class TestKernelCosts:
    def test_chunks_match_declared_sizes(self):
        costs = KernelCosts()
        assert costs.syscall_entry_chunk().work.instructions == costs.syscall_entry
        assert costs.syscall_exit_chunk().work.instructions == costs.syscall_exit
        assert costs.irq_entry_chunk().work.instructions == costs.irq_entry
        assert costs.timer_tick_chunk().work.instructions == costs.timer_tick_body
        assert costs.context_switch_chunk().work.instructions == costs.context_switch


class TestBuilds:
    def test_three_builds_registered(self):
        assert set(KERNEL_BUILDS) == {"perfmon", "perfctr", "vanilla"}

    def test_vanilla_has_no_extension_hooks(self):
        assert VANILLA_BUILD.ext_tick_hook == 0
        assert VANILLA_BUILD.ext_switch_hook == 0

    def test_tick_instructions_compose(self):
        build = PERFCTR_BUILD
        expected = (
            build.costs.irq_entry
            + build.costs.timer_tick_body
            + build.ext_tick_hook
            + build.costs.irq_exit
        )
        assert build.tick_instructions() == expected

    def test_builds_differ_in_hz(self):
        # The two patched kernels are configured differently; this is a
        # calibration choice documented in the module and DESIGN.md.
        assert PERFMON_BUILD.hz != PERFCTR_BUILD.hz

    def test_skid_for_unknown_processor_is_neutral(self):
        skid = PERFMON_BUILD.skid_for("ZZ")
        assert skid.probability == 0.0

    def test_all_builds_have_skid_for_study_processors(self):
        for build in (PERFMON_BUILD, PERFCTR_BUILD):
            for key in ("PD", "CD", "K8"):
                assert -1 <= build.skid_for(key).bias <= 1


class TestValidation:
    def test_bad_hz(self):
        with pytest.raises(ConfigurationError, match="HZ"):
            KernelBuildConfig(name="x", hz=0)

    def test_bad_io_range(self):
        with pytest.raises(ConfigurationError, match="io_handler"):
            KernelBuildConfig(name="x", hz=100, io_handler_instructions=(10, 5))

    def test_skid_probability_range(self):
        with pytest.raises(ConfigurationError, match="probability"):
            SkidConfig(probability=1.5, bias=0.0)

    def test_skid_bias_range(self):
        with pytest.raises(ConfigurationError, match="bias"):
            SkidConfig(probability=0.5, bias=-2.0)

    def test_skid_magnitude_range(self):
        with pytest.raises(ConfigurationError, match="magnitude"):
            SkidConfig(probability=0.5, bias=0.0, magnitude=-1)

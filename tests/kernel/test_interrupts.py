"""Unit tests for repro.kernel.interrupts."""

from repro.cpu.events import Event, PrivFilter
from repro.cpu.pmu import CounterConfig
from repro.isa.work import WorkVector
from repro.kernel.system import Machine


def machine_no_io(**kwargs) -> Machine:
    defaults = dict(processor="CD", kernel="perfctr", seed=3, io_interrupts=False)
    defaults.update(kwargs)
    return Machine(**defaults)


def run_user_cycles(machine: Machine, cycles: float) -> None:
    machine.core.retire(WorkVector.zero(), cycles=cycles)


class TestTimerTicks:
    def test_tick_fires_once_per_period(self):
        machine = machine_no_io()
        period_cycles = machine.core.freq.current_hz / machine.build.hz
        run_user_cycles(machine, 5.5 * period_cycles)
        # The first tick lands at a random phase within the first period.
        assert machine.controller.ticks_delivered in (5, 6)

    def test_tick_work_lands_in_kernel_mode_counts(self):
        machine = machine_no_io()
        pmu = machine.core.pmu
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.OS, True))
        period_cycles = machine.core.freq.current_hz / machine.build.hz
        run_user_cycles(machine, 1.5 * period_cycles)
        delivered = machine.controller.ticks_delivered
        assert delivered >= 1
        assert pmu.read(0) == delivered * machine.build.tick_instructions()

    def test_tick_work_invisible_to_user_counter(self):
        machine = machine_no_io()
        machine.core.skid_probability = 0.0  # isolate the handler effect
        pmu = machine.core.pmu
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR, True))
        period_cycles = machine.core.freq.current_hz / machine.build.hz
        run_user_cycles(machine, 3.5 * period_cycles)
        assert pmu.read(0) == 0

    def test_no_ticks_without_elapsed_time(self):
        machine = machine_no_io()
        assert machine.controller.ticks_delivered == 0

    def test_masking_defers_delivery(self):
        machine = machine_no_io()
        period_cycles = machine.core.freq.current_hz / machine.build.hz
        with machine.core.masked_interrupts():
            run_user_cycles(machine, 2.5 * period_cycles)
            assert machine.controller.ticks_delivered == 0
        # Delivery happens at the next unmasked retirement.
        run_user_cycles(machine, 1.0)
        assert machine.controller.ticks_delivered >= 2

    def test_cycles_until_next_positive(self):
        machine = machine_no_io()
        horizon = machine.controller.cycles_until_next(machine.core)
        period_cycles = machine.core.freq.current_hz / machine.build.hz
        assert horizon is not None
        assert 0 <= horizon <= period_cycles

    def test_disabled_controller_never_fires(self):
        machine = machine_no_io()
        machine.controller.enabled = False
        period_cycles = machine.core.freq.current_hz / machine.build.hz
        run_user_cycles(machine, 10 * period_cycles)
        assert machine.controller.ticks_delivered == 0


class TestIoInterrupts:
    def test_io_interrupts_arrive_over_time(self):
        machine = Machine(processor="CD", kernel="perfctr", seed=5,
                          io_interrupts=True)
        # Run one simulated second: expect roughly io_irq_rate_hz arrivals.
        run_user_cycles(machine, machine.core.freq.current_hz * 1.0)
        rate = machine.build.io_irq_rate_hz
        assert 0 < machine.controller.io_delivered <= rate * 5

    def test_io_disabled(self):
        machine = machine_no_io()
        run_user_cycles(machine, machine.core.freq.current_hz * 1.0)
        assert machine.controller.io_delivered == 0

    def test_io_handler_counts_as_kernel_error(self):
        machine = Machine(processor="CD", kernel="perfctr", seed=5,
                          io_interrupts=True)
        pmu = machine.core.pmu
        pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.OS, True))
        run_user_cycles(machine, machine.core.freq.current_hz * 0.5)
        ticks = machine.controller.ticks_delivered
        assert pmu.read(0) > ticks * machine.build.tick_instructions() * 0.99


class TestDeterminism:
    def test_same_seed_same_ticks(self):
        counts = []
        for _ in range(2):
            machine = Machine(processor="K8", kernel="perfmon", seed=42)
            run_user_cycles(machine, 1e8)
            counts.append(
                (machine.controller.ticks_delivered,
                 machine.controller.io_delivered,
                 machine.core.pmu.read_tsc())
            )
        assert counts[0] == counts[1]

    def test_different_seed_different_phase(self):
        phases = set()
        for seed in range(20):
            machine = Machine(processor="K8", kernel="perfmon", seed=seed,
                              io_interrupts=False)
            phases.add(machine.controller.next_timer_s)
        assert len(phases) > 15

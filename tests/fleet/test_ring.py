"""The consistent-hash ring's two load-bearing properties.

Balance keeps any one shard from becoming the fleet's bottleneck;
minimal movement is what makes shard crashes cheap — only the dead
shard's keys move, so every other shard's dedup and snapshot locality
survives the failure untouched.
"""

from __future__ import annotations

import pytest

from repro.fleet.ring import DEFAULT_REPLICAS, HashRing, _hash64

KEYS = [f"token-{i:04d}" for i in range(2000)]


def ring_of(*shards: str, replicas: int = DEFAULT_REPLICAS) -> HashRing:
    ring = HashRing(replicas=replicas)
    for shard in shards:
        ring.add(shard)
    return ring


class TestMembership:
    def test_empty_ring_routes_nothing(self):
        assert HashRing().route("anything") is None

    def test_single_shard_owns_everything(self):
        ring = ring_of("s0")
        assert all(ring.route(key) == "s0" for key in KEYS)

    def test_add_is_idempotent(self):
        ring = ring_of("s0", "s1")
        before = ring.assignment(KEYS)
        ring.add("s1")
        assert ring.assignment(KEYS) == before
        assert len(ring) == 2

    def test_remove_is_idempotent(self):
        ring = ring_of("s0", "s1")
        ring.remove("s1")
        ring.remove("s1")
        assert ring.shards == ("s0",)
        assert all(ring.route(key) == "s0" for key in KEYS)

    def test_remove_to_empty(self):
        ring = ring_of("s0")
        ring.remove("s0")
        assert len(ring) == 0
        assert ring.route("k") is None

    def test_contains(self):
        ring = ring_of("s0")
        assert "s0" in ring
        assert "s1" not in ring

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestDeterminism:
    def test_two_rings_agree(self):
        # Stable hashing: any router that knows the membership computes
        # the same assignment — no coordination protocol needed.
        a = ring_of("s0", "s1", "s2")
        b = ring_of("s2", "s0", "s1")  # insertion order must not matter
        assert a.assignment(KEYS) == b.assignment(KEYS)

    def test_hash_is_process_stable(self):
        # Pinned value: would change only if the hash scheme changed,
        # which would reshuffle every deployed fleet's assignment.
        assert _hash64("s0#0") == _hash64("s0#0")
        assert _hash64("a") != _hash64("b")


class TestBalance:
    def test_no_shard_is_starved_or_overloaded(self):
        ring = ring_of("s0", "s1", "s2")
        counts = {"s0": 0, "s1": 0, "s2": 0}
        for key in KEYS:
            counts[ring.route(key)] += 1
        expected = len(KEYS) / 3
        for shard, count in counts.items():
            assert count > expected * 0.5, (shard, counts)
            assert count < expected * 1.6, (shard, counts)

    def test_two_shard_balance(self):
        ring = ring_of("s0", "s1")
        owned = sum(1 for key in KEYS if ring.route(key) == "s0")
        assert 0.3 < owned / len(KEYS) < 0.7


class TestMinimalMovement:
    def test_removal_moves_only_the_dead_shards_keys(self):
        ring = ring_of("s0", "s1", "s2")
        before = ring.assignment(KEYS)
        ring.remove("s1")
        after = ring.assignment(KEYS)
        for key in KEYS:
            if before[key] != "s1":
                assert after[key] == before[key], key
            else:
                assert after[key] in ("s0", "s2"), key

    def test_readding_restores_the_original_assignment(self):
        # The respawned shard resumes serving exactly the key range it
        # served before the crash.
        ring = ring_of("s0", "s1", "s2")
        before = ring.assignment(KEYS)
        ring.remove("s1")
        ring.add("s1")
        assert ring.assignment(KEYS) == before

    def test_addition_only_steals_keys(self):
        ring = ring_of("s0", "s1")
        before = ring.assignment(KEYS)
        ring.add("s2")
        after = ring.assignment(KEYS)
        moved = [key for key in KEYS if after[key] != before[key]]
        assert moved, "a new shard must take some keys"
        assert all(after[key] == "s2" for key in moved)
        # And roughly its fair share — not everything.
        assert len(moved) < len(KEYS) * 0.6

"""The loadtest harness's statistics and result-file format.

The live-service path is exercised by ``test_fleet_e2e.py``; these
tests pin the math and the pytest-benchmark compatibility of the
output file, which ``repro bench diff`` and CI depend on.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.benchdiff import load_benchmarks
from repro.fleet.loadtest import (
    _entry,
    _percentile,
    loadtest_plan,
    render_entries,
    run_metadata,
    summarize,
    write_bench_json,
)


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.99) == 0.0

    def test_single_sample(self):
        assert _percentile([3.0], 0.5) == 3.0
        assert _percentile([3.0], 0.99) == 3.0

    def test_nearest_rank(self):
        ordered = [float(i) for i in range(1, 101)]  # 1..100
        assert _percentile(ordered, 0.50) == 50.0
        assert _percentile(ordered, 0.90) == 90.0
        assert _percentile(ordered, 0.99) == 99.0
        assert _percentile(ordered, 1.0) == 100.0


class TestSummarize:
    def test_stats_shape(self):
        stats = summarize([0.1, 0.2, 0.3, 0.4], wall_seconds=2.0)
        assert stats["rounds"] == 4
        assert stats["min"] == 0.1
        assert stats["max"] == 0.4
        assert stats["mean"] == pytest.approx(0.25)
        assert stats["median"] == pytest.approx(0.25)
        assert stats["total"] == pytest.approx(1.0)
        assert stats["ops"] == pytest.approx(4.0)
        assert stats["throughput_rps"] == pytest.approx(2.0)
        assert stats["data"] == [0.1, 0.2, 0.3, 0.4]

    def test_percentiles_present(self):
        stats = summarize([0.1] * 98 + [5.0, 6.0], wall_seconds=1.0)
        assert stats["p50"] == 0.1
        assert stats["p99"] == 5.0  # nearest rank: the 99th of 100
        assert stats["max"] == 6.0

    def test_empty_run(self):
        stats = summarize([], wall_seconds=1.0)
        assert stats["rounds"] == 0
        assert stats["ops"] == 0.0

    def test_single_sample_has_zero_stddev(self):
        assert summarize([0.5], wall_seconds=1.0)["stddev"] == 0.0


class TestPlan:
    def test_plan_varies_only_by_seed(self):
        a = loadtest_plan(0)
        b = loadtest_plan(1)
        assert a != b
        [job_a], [job_b] = a["jobs"], b["jobs"]
        assert job_a["config"]["seed"] == 0
        assert job_b["config"]["seed"] == 1
        assert job_a["benchmark"] == job_b["benchmark"]

    def test_same_seed_is_identical(self):
        # Identical plans produce identical cache tokens, which is what
        # routes repeats to the same shard.
        assert loadtest_plan(3) == loadtest_plan(3)


class TestBenchJson:
    def entry(self):
        stats = summarize([0.1, 0.2], wall_seconds=0.5)
        return {
            "group": "loadtest",
            "name": "loadtest_fleet_2shards",
            "fullname": "repro loadtest::loadtest_fleet_2shards",
            "params": None, "param": None,
            "extra_info": {"topology": "fleet", "p99": stats["p99"]},
            "options": {},
            "stats": stats,
        }

    def test_file_shape(self, tmp_path):
        path = write_bench_json(tmp_path / "BENCH.json", [self.entry()])
        payload = json.loads(path.read_text())
        assert set(payload) == {
            "machine_info", "commit_info", "benchmarks", "datetime",
            "version",
        }
        [bench] = payload["benchmarks"]
        assert bench["name"] == "loadtest_fleet_2shards"
        assert bench["stats"]["rounds"] == 2

    def test_output_is_diffable(self, tmp_path):
        # The contract that matters: bench diff can read what the
        # loadtest writes, including the percentile metrics.
        path = write_bench_json(tmp_path / "BENCH.json", [self.entry()])
        loaded = load_benchmarks(path)
        assert "loadtest_fleet_2shards" in loaded
        assert "p99" in loaded["loadtest_fleet_2shards"]

    def test_render_entries_is_one_row_per_topology(self):
        text = render_entries([self.entry()])
        assert "loadtest_fleet_2shards" in text
        assert len(text.splitlines()) == 2  # header + row


class TestRunMetadata:
    def test_always_carries_sha_and_host(self):
        metadata = run_metadata()
        assert metadata["git_sha"]  # a sha in-repo, 'unknown' outside
        assert metadata["hostname"]

    def test_meta_pairs_override(self):
        metadata = run_metadata({"git_sha": "forced", "ci_run": "9"})
        assert metadata["git_sha"] == "forced"
        assert metadata["ci_run"] == "9"


class TestEntry:
    def stats(self):
        return summarize([0.1, 0.2], wall_seconds=0.5)

    def test_metadata_lands_in_extra_info(self):
        entry = _entry(
            "loadtest_single_process", self.stats(), {"topology": "single"},
            metadata={"git_sha": "abc", "hostname": "box"},
        )
        assert entry["extra_info"]["git_sha"] == "abc"
        assert entry["extra_info"]["hostname"] == "box"
        assert entry["extra_info"]["topology"] == "single"
        assert "p99" in entry["extra_info"]

    def test_metrics_snapshot_is_optional(self):
        bare = _entry("x", self.stats(), {})
        assert "observability" not in bare
        with_metrics = _entry(
            "x", self.stats(), {},
            metrics={"repro_cache_hits": 3.0},
        )
        assert with_metrics["observability"]["metrics"] == {
            "repro_cache_hits": 3.0,
        }

    def test_stamped_file_survives_the_whole_toolchain(self, tmp_path):
        # loadtest entry -> bench JSON -> diffable + reportable.
        from repro.obs.htmlreport import load_run, render_report

        entry = _entry(
            "loadtest_single_process", self.stats(), {"topology": "single"},
            metadata=run_metadata({"ci_run": "7"}),
            metrics={"repro_cache_hits": 2.0, "repro_cache_misses": 2.0},
        )
        path = write_bench_json(tmp_path / "BENCH.json", [entry])
        assert "p99" in load_benchmarks(path)["loadtest_single_process"]
        text = render_report([load_run(path)])
        assert "hit rates" in text
        assert "ci_run=7" in text

"""``repro bench diff``: regression detection with a noise threshold."""

from __future__ import annotations

import json

import pytest

from repro.analysis.benchdiff import (
    diff_benchmarks,
    diff_files,
    load_benchmarks,
)
from repro.cli import main
from repro.errors import ConfigurationError


def bench_file(tmp_path, name, benchmarks):
    path = tmp_path / name
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return path


def entry(name, mean, **extra):
    return {
        "name": name,
        "stats": {"mean": mean, "ops": 1.0 / mean if mean else 0.0},
        "extra_info": extra,
    }


class TestLoad:
    def test_name_to_stats(self, tmp_path):
        path = bench_file(tmp_path, "a.json", [entry("b1", 0.5)])
        loaded = load_benchmarks(path)
        assert loaded["b1"]["mean"] == 0.5

    def test_extra_info_numbers_fold_into_stats(self, tmp_path):
        # Percentiles written by the loadtest harness live in stats;
        # pytest-benchmark puts custom numbers in extra_info.  Both
        # must be diffable by the same metric name.
        path = bench_file(
            tmp_path, "a.json", [entry("b1", 0.5, p99=0.9)]
        )
        assert load_benchmarks(path)["b1"]["p99"] == 0.9

    def test_missing_file_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_benchmarks(tmp_path / "nope.json")

    def test_invalid_json_is_a_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{{{")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_benchmarks(path)

    def test_missing_benchmarks_list_is_a_config_error(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text("{}")
        with pytest.raises(ConfigurationError, match="no 'benchmarks'"):
            load_benchmarks(path)


class TestDiff:
    def test_within_threshold_is_clean(self):
        deltas, _, _ = diff_benchmarks(
            {"b": {"mean": 1.00}}, {"b": {"mean": 1.05}}, threshold=0.10
        )
        [delta] = deltas
        assert delta.regression == pytest.approx(0.05)

    def test_time_metric_growth_is_a_regression(self):
        deltas, _, _ = diff_benchmarks(
            {"b": {"mean": 1.0}}, {"b": {"mean": 1.5}}
        )
        assert deltas[0].regression == pytest.approx(0.5)

    def test_ops_growth_is_an_improvement(self):
        # Higher throughput must not be flagged as a regression.
        deltas, _, _ = diff_benchmarks(
            {"b": {"ops": 100.0}}, {"b": {"ops": 150.0}}, metric="ops"
        )
        assert deltas[0].regression == pytest.approx(-0.5)

    def test_ops_drop_is_a_regression(self):
        deltas, _, _ = diff_benchmarks(
            {"b": {"ops": 100.0}}, {"b": {"ops": 50.0}}, metric="ops"
        )
        assert deltas[0].regression == pytest.approx(0.5)

    def test_disjoint_names_reported_not_failed(self):
        deltas, base_only, new_only = diff_benchmarks(
            {"old": {"mean": 1.0}}, {"new": {"mean": 9.0}}
        )
        assert deltas == []
        assert base_only == ["old"]
        assert new_only == ["new"]

    def test_worst_regression_sorts_first(self):
        deltas, _, _ = diff_benchmarks(
            {"a": {"mean": 1.0}, "b": {"mean": 1.0}},
            {"a": {"mean": 1.1}, "b": {"mean": 3.0}},
        )
        assert [d.name for d in deltas] == ["b", "a"]

    def test_unknown_metric_names_the_candidates(self):
        with pytest.raises(ConfigurationError, match="available: "):
            diff_benchmarks(
                {"b": {"mean": 1.0}}, {"b": {"mean": 1.0}}, metric="nope"
            )


class TestDiffFiles:
    def test_clean_exit_zero(self, tmp_path):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.01)])
        code, text = diff_files(a, b)
        assert code == 0
        assert "clean" in text

    def test_regression_exit_one(self, tmp_path):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 2.0)])
        code, text = diff_files(a, b)
        assert code == 1
        assert "REGRESSED" in text

    def test_disjoint_exit_zero(self, tmp_path):
        a = bench_file(tmp_path, "a.json", [entry("old", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("new", 9.0)])
        code, text = diff_files(a, b)
        assert code == 0
        assert "only in baseline: old" in text


class TestCli:
    def test_cli_clean(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.0)])
        assert main(["bench", "diff", str(a), str(b)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_regression_exit_one(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 5.0)])
        assert main(["bench", "diff", str(a), str(b)]) == 1

    def test_cli_threshold_widens_the_noise_band(self, tmp_path):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.5)])
        assert main(["bench", "diff", str(a), str(b)]) == 1
        assert main(
            ["bench", "diff", str(a), str(b), "--threshold", "0.6"]
        ) == 0

    def test_cli_missing_file_exit_two(self, tmp_path, capsys):
        b = bench_file(tmp_path, "b.json", [entry("b", 1.0)])
        assert main(["bench", "diff", str(tmp_path / "no.json"), str(b)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_negative_threshold_exit_two(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        assert main(
            ["bench", "diff", str(a), str(a), "--threshold", "-0.1"]
        ) == 2
        assert "threshold" in capsys.readouterr().err


class TestMalformedFiles:
    """Every malformed-input shape must exit 2 with a clear message,
    never a traceback — CI treats exit 1 as 'real regression'."""

    @pytest.mark.parametrize("content, match", [
        ("", "empty"),                          # zero-byte file
        ("[1, 2, 3]", "expected an object"),  # top-level list
        ('{"benchmarks": []}', "contains no benchmarks"),
        ('{"benchmarks": {"not": "a list"}}', "no 'benchmarks' list"),
        ('{"machine_info": {}}', "no 'benchmarks'"),  # non-pytest JSON
        ('{"benchmarks": [{"name": "b", "stats"', "not valid JSON"),
    ])
    def test_loader_raises_config_error(self, tmp_path, content, match):
        path = tmp_path / "bad.json"
        path.write_text(content)
        with pytest.raises(ConfigurationError, match=match):
            load_benchmarks(path)

    @pytest.mark.parametrize("content", [
        "", "[1]", '{"benchmarks": []}',
        '{"benchmarks": [{"name": "b", "stats"',  # truncated mid-write
    ])
    def test_cli_exit_two_with_message(self, tmp_path, capsys, content):
        bad = tmp_path / "bad.json"
        bad.write_text(content)
        good = bench_file(tmp_path, "good.json", [entry("b", 1.0)])
        assert main(["bench", "diff", str(bad), str(good)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["bench", "diff", str(good), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


class TestHistoryGating:
    """``bench diff --history``: per-benchmark variance thresholds."""

    def record(self, tmp_path, means, name="b"):
        hist = tmp_path / "hist"
        for i, mean in enumerate(means):
            path = bench_file(
                tmp_path, f"run{i}.json", [entry(name, mean)]
            )
            assert main(
                ["bench", "record", str(path), "--history", str(hist)]
            ) == 0
        return hist

    def test_noisy_history_widens_the_gate(self, tmp_path, capsys):
        # 20% historical CoV: a 12% slip is inside 3 sigma -> clean,
        # even though it would trip the global 10% default.
        hist = self.record(tmp_path, [1.0, 1.2, 0.8, 1.1, 0.9])
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.12)])
        assert main(["bench", "diff", str(a), str(b)]) == 1
        capsys.readouterr()
        assert main(
            ["bench", "diff", str(a), str(b), "--history", str(hist)]
        ) == 0
        out = capsys.readouterr().out
        assert "per-benchmark noise thresholds" in out
        assert "thr" in out

    def test_steady_history_tightens_the_gate(
        self, tmp_path, capsys, monkeypatch
    ):
        # Near-zero historical variance: a 8% slip clears the floor ->
        # regression, even though the global 10% would call it noise.
        # The history gate only fails the build when hardened.
        monkeypatch.setenv("REPRO_BENCH_GATE", "hard")
        hist = self.record(tmp_path, [1.0, 1.0, 1.0])
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.08)])
        assert main(["bench", "diff", str(a), str(b)]) == 0
        capsys.readouterr()
        assert main(
            ["bench", "diff", str(a), str(b), "--history", str(hist)]
        ) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_benchmark_missing_from_history_uses_global(
        self, tmp_path, capsys
    ):
        hist = self.record(tmp_path, [1.0, 1.0, 1.0], name="other")
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.08)])
        # 'b' has no history: the global 10% applies and 8% is noise.
        assert main(
            ["bench", "diff", str(a), str(b), "--history", str(hist)]
        ) == 0
        capsys.readouterr()

    def test_direction_aware_throughput_with_history(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BENCH_GATE", "hard")
        hist = tmp_path / "hist"
        for i, rps in enumerate([100.0, 101.0, 99.0]):
            path = bench_file(
                tmp_path, f"run{i}.json",
                [entry("b", 1.0, throughput_rps=rps)],
            )
            assert main(
                ["bench", "record", str(path), "--history", str(hist)]
            ) == 0
        a = bench_file(
            tmp_path, "a.json", [entry("b", 1.0, throughput_rps=100.0)]
        )
        up = bench_file(
            tmp_path, "up.json", [entry("b", 1.0, throughput_rps=140.0)]
        )
        down = bench_file(
            tmp_path, "down.json", [entry("b", 1.0, throughput_rps=60.0)]
        )
        base_args = ["--metric", "throughput_rps", "--history", str(hist)]
        # More requests per second is an improvement, never a regression.
        assert main(["bench", "diff", str(a), str(up)] + base_args) == 0
        capsys.readouterr()
        assert main(["bench", "diff", str(a), str(down)] + base_args) == 1
        capsys.readouterr()

    def test_missing_history_dir_exit_two(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        assert main([
            "bench", "diff", str(a), str(a),
            "--history", str(tmp_path / "nowhere"),
        ]) == 2
        assert "bench record" in capsys.readouterr().err

    def test_window_floor_of_two(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        assert main(
            ["bench", "diff", str(a), str(a), "--window", "1"]
        ) == 2
        assert "window" in capsys.readouterr().err


class TestGatePolicy:
    """``REPRO_BENCH_GATE``: the history gate defaults to advisory so
    a noisy CI runner can't fail the build; ``hard`` restores exit 1."""

    def regression_pair(self, tmp_path):
        hist = tmp_path / "hist"
        for i in range(3):
            path = bench_file(tmp_path, f"run{i}.json", [entry("b", 1.0)])
            assert main(
                ["bench", "record", str(path), "--history", str(hist)]
            ) == 0
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.08)])
        return hist, a, b

    def test_advisory_default_downgrades_history_regression(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BENCH_GATE", raising=False)
        hist, a, b = self.regression_pair(tmp_path)
        capsys.readouterr()
        assert main(
            ["bench", "diff", str(a), str(b), "--history", str(hist)]
        ) == 0
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out  # the report still says so
        assert "advisory:" in captured.err
        assert "REPRO_BENCH_GATE=hard" in captured.err

    def test_hard_gate_fails_the_build(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BENCH_GATE", "hard")
        hist, a, b = self.regression_pair(tmp_path)
        capsys.readouterr()
        assert main(
            ["bench", "diff", str(a), str(b), "--history", str(hist)]
        ) == 1
        assert "advisory:" not in capsys.readouterr().err

    def test_advisory_leaves_plain_diffs_hard(
        self, tmp_path, capsys, monkeypatch
    ):
        # Without --history the variance gate isn't in play: a plain
        # threshold regression still fails regardless of the knob.
        monkeypatch.setenv("REPRO_BENCH_GATE", "advisory")
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 5.0)])
        assert main(["bench", "diff", str(a), str(b)]) == 1
        capsys.readouterr()

    def test_clean_history_diff_stays_silent(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_BENCH_GATE", raising=False)
        hist, a, _ = self.regression_pair(tmp_path)
        capsys.readouterr()
        assert main(
            ["bench", "diff", str(a), str(a), "--history", str(hist)]
        ) == 0
        assert "advisory:" not in capsys.readouterr().err

    def test_garbage_gate_value_exit_two(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BENCH_GATE", "mushy")
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        assert main(["bench", "diff", str(a), str(a)]) == 2
        err = capsys.readouterr().err
        assert "REPRO_BENCH_GATE" in err
        assert "mushy" in err


class TestRecordCli:
    def test_record_reports_what_it_stored(self, tmp_path, capsys):
        path = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        assert main([
            "bench", "record", str(path),
            "--history", str(tmp_path / "hist"),
            "--meta", "ci_run=42",
        ]) == 0
        out = capsys.readouterr().out
        assert "recorded 1 benchmark(s)" in out

    def test_record_malformed_meta_exit_two(self, tmp_path, capsys):
        path = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        assert main([
            "bench", "record", str(path),
            "--history", str(tmp_path / "hist"), "--meta", "nope",
        ]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_record_malformed_result_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{{{")
        assert main([
            "bench", "record", str(bad),
            "--history", str(tmp_path / "hist"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

"""``repro bench diff``: regression detection with a noise threshold."""

from __future__ import annotations

import json

import pytest

from repro.analysis.benchdiff import (
    diff_benchmarks,
    diff_files,
    load_benchmarks,
)
from repro.cli import main
from repro.errors import ConfigurationError


def bench_file(tmp_path, name, benchmarks):
    path = tmp_path / name
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return path


def entry(name, mean, **extra):
    return {
        "name": name,
        "stats": {"mean": mean, "ops": 1.0 / mean if mean else 0.0},
        "extra_info": extra,
    }


class TestLoad:
    def test_name_to_stats(self, tmp_path):
        path = bench_file(tmp_path, "a.json", [entry("b1", 0.5)])
        loaded = load_benchmarks(path)
        assert loaded["b1"]["mean"] == 0.5

    def test_extra_info_numbers_fold_into_stats(self, tmp_path):
        # Percentiles written by the loadtest harness live in stats;
        # pytest-benchmark puts custom numbers in extra_info.  Both
        # must be diffable by the same metric name.
        path = bench_file(
            tmp_path, "a.json", [entry("b1", 0.5, p99=0.9)]
        )
        assert load_benchmarks(path)["b1"]["p99"] == 0.9

    def test_missing_file_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_benchmarks(tmp_path / "nope.json")

    def test_invalid_json_is_a_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{{{")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_benchmarks(path)

    def test_missing_benchmarks_list_is_a_config_error(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text("{}")
        with pytest.raises(ConfigurationError, match="no 'benchmarks'"):
            load_benchmarks(path)


class TestDiff:
    def test_within_threshold_is_clean(self):
        deltas, _, _ = diff_benchmarks(
            {"b": {"mean": 1.00}}, {"b": {"mean": 1.05}}, threshold=0.10
        )
        [delta] = deltas
        assert delta.regression == pytest.approx(0.05)

    def test_time_metric_growth_is_a_regression(self):
        deltas, _, _ = diff_benchmarks(
            {"b": {"mean": 1.0}}, {"b": {"mean": 1.5}}
        )
        assert deltas[0].regression == pytest.approx(0.5)

    def test_ops_growth_is_an_improvement(self):
        # Higher throughput must not be flagged as a regression.
        deltas, _, _ = diff_benchmarks(
            {"b": {"ops": 100.0}}, {"b": {"ops": 150.0}}, metric="ops"
        )
        assert deltas[0].regression == pytest.approx(-0.5)

    def test_ops_drop_is_a_regression(self):
        deltas, _, _ = diff_benchmarks(
            {"b": {"ops": 100.0}}, {"b": {"ops": 50.0}}, metric="ops"
        )
        assert deltas[0].regression == pytest.approx(0.5)

    def test_disjoint_names_reported_not_failed(self):
        deltas, base_only, new_only = diff_benchmarks(
            {"old": {"mean": 1.0}}, {"new": {"mean": 9.0}}
        )
        assert deltas == []
        assert base_only == ["old"]
        assert new_only == ["new"]

    def test_worst_regression_sorts_first(self):
        deltas, _, _ = diff_benchmarks(
            {"a": {"mean": 1.0}, "b": {"mean": 1.0}},
            {"a": {"mean": 1.1}, "b": {"mean": 3.0}},
        )
        assert [d.name for d in deltas] == ["b", "a"]

    def test_unknown_metric_names_the_candidates(self):
        with pytest.raises(ConfigurationError, match="available: "):
            diff_benchmarks(
                {"b": {"mean": 1.0}}, {"b": {"mean": 1.0}}, metric="nope"
            )


class TestDiffFiles:
    def test_clean_exit_zero(self, tmp_path):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.01)])
        code, text = diff_files(a, b)
        assert code == 0
        assert "clean" in text

    def test_regression_exit_one(self, tmp_path):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 2.0)])
        code, text = diff_files(a, b)
        assert code == 1
        assert "REGRESSED" in text

    def test_disjoint_exit_zero(self, tmp_path):
        a = bench_file(tmp_path, "a.json", [entry("old", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("new", 9.0)])
        code, text = diff_files(a, b)
        assert code == 0
        assert "only in baseline: old" in text


class TestCli:
    def test_cli_clean(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.0)])
        assert main(["bench", "diff", str(a), str(b)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_regression_exit_one(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 5.0)])
        assert main(["bench", "diff", str(a), str(b)]) == 1

    def test_cli_threshold_widens_the_noise_band(self, tmp_path):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        b = bench_file(tmp_path, "b.json", [entry("b", 1.5)])
        assert main(["bench", "diff", str(a), str(b)]) == 1
        assert main(
            ["bench", "diff", str(a), str(b), "--threshold", "0.6"]
        ) == 0

    def test_cli_missing_file_exit_two(self, tmp_path, capsys):
        b = bench_file(tmp_path, "b.json", [entry("b", 1.0)])
        assert main(["bench", "diff", str(tmp_path / "no.json"), str(b)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_negative_threshold_exit_two(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json", [entry("b", 1.0)])
        assert main(
            ["bench", "diff", str(a), str(a), "--threshold", "-0.1"]
        ) == 2
        assert "threshold" in capsys.readouterr().err

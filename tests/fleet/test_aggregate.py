"""Merging shard metric expositions and health payloads fleet-wide."""

from __future__ import annotations

from repro.fleet.aggregate import (
    aggregate_expositions,
    aggregate_health,
    parse_exposition,
)

SHARD_A = """\
# HELP repro_requests_total Requests received.
# TYPE repro_requests_total counter
repro_requests_total 7
# HELP repro_cache_hit_rate Cache hit ratio.
# TYPE repro_cache_hit_rate gauge
repro_cache_hit_rate 0.5
# HELP repro_job_seconds Job latency.
# TYPE repro_job_seconds histogram
repro_job_seconds_bucket{le="0.1"} 2
repro_job_seconds_bucket{le="+Inf"} 3
repro_job_seconds_sum 0.4
repro_job_seconds_count 3
"""

SHARD_B = """\
# HELP repro_requests_total Requests received.
# TYPE repro_requests_total counter
repro_requests_total 5
# HELP repro_cache_hit_rate Cache hit ratio.
# TYPE repro_cache_hit_rate gauge
repro_cache_hit_rate 0.25
# HELP repro_job_seconds Job latency.
# TYPE repro_job_seconds histogram
repro_job_seconds_bucket{le="0.1"} 1
repro_job_seconds_bucket{le="+Inf"} 1
repro_job_seconds_sum 0.05
repro_job_seconds_count 1
"""

ROUTER = """\
# HELP repro_requests_total Requests received.
# TYPE repro_requests_total counter
repro_requests_total 12
# HELP repro_fleet_reroutes_total Jobs rerouted.
# TYPE repro_fleet_reroutes_total counter
repro_fleet_reroutes_total 1
"""


class TestParse:
    def test_families_and_samples(self):
        families = parse_exposition(SHARD_A)
        assert families["repro_requests_total"].kind == "counter"
        assert families["repro_requests_total"].samples == [
            ("repro_requests_total", "", 7.0)
        ]

    def test_histogram_samples_join_their_family(self):
        families = parse_exposition(SHARD_A)
        hist = families["repro_job_seconds"]
        assert hist.kind == "histogram"
        names = [sample for sample, _, _ in hist.samples]
        assert names == [
            "repro_job_seconds_bucket", "repro_job_seconds_bucket",
            "repro_job_seconds_sum", "repro_job_seconds_count",
        ]
        assert hist.samples[0][1] == 'le="0.1"'

    def test_garbage_lines_are_skipped(self):
        families = parse_exposition("not a metric\n# weird comment\nx 1\n")
        assert families["x"].samples == [("x", "", 1.0)]


class TestAggregateExpositions:
    def test_counters_sum_into_the_fleet_row(self):
        text = aggregate_expositions({"s0": SHARD_A, "s1": SHARD_B})
        assert 'repro_requests_total{shard="fleet"} 12' in text
        assert 'repro_requests_total{shard="s0"} 7' in text
        assert 'repro_requests_total{shard="s1"} 5' in text

    def test_every_sample_line_carries_a_shard_label(self):
        text = aggregate_expositions(
            {"s0": SHARD_A, "s1": SHARD_B}, ROUTER
        )
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            assert 'shard="' in line, line

    def test_histograms_sum_sample_wise(self):
        text = aggregate_expositions({"s0": SHARD_A, "s1": SHARD_B})
        assert (
            'repro_job_seconds_bucket{shard="fleet",le="0.1"} 3' in text
        )
        assert 'repro_job_seconds_count{shard="fleet"} 4' in text
        assert 'repro_job_seconds_sum{shard="fleet"} 0.45' in text

    def test_rate_gauges_keep_per_shard_rows_but_never_sum(self):
        # 0.5 + 0.25 would be a nonsense "fleet hit rate".
        text = aggregate_expositions({"s0": SHARD_A, "s1": SHARD_B})
        assert 'repro_cache_hit_rate{shard="s0"} 0.5' in text
        assert 'repro_cache_hit_rate{shard="s1"} 0.25' in text
        assert 'repro_cache_hit_rate{shard="fleet"}' not in text

    def test_router_rows_are_labelled_and_excluded_from_sums(self):
        # The router counts proxied traffic; summing it with the shards
        # would double count every request.
        text = aggregate_expositions(
            {"s0": SHARD_A, "s1": SHARD_B}, ROUTER
        )
        assert 'repro_requests_total{shard="router"} 12' in text
        assert 'repro_requests_total{shard="fleet"} 12' in text  # 7 + 5
        assert 'repro_fleet_reroutes_total{shard="router"} 1' in text

    def test_help_and_type_emitted_once_per_family(self):
        text = aggregate_expositions({"s0": SHARD_A, "s1": SHARD_B})
        assert text.count("# TYPE repro_requests_total counter") == 1


class TestAggregateHealth:
    def test_all_ok(self):
        health = aggregate_health({
            "s0": {"status": "ok", "queue_depth": 1, "running": 2,
                   "jobs": {"done": 3}},
            "s1": {"status": "ok", "queue_depth": 0, "running": 1,
                   "jobs": {"done": 4, "failed": 1}},
        })
        assert health["status"] == "ok"
        assert health["fleet"]["queue_depth"] == 1
        assert health["fleet"]["running"] == 3
        assert health["fleet"]["jobs"] == {"done": 7, "failed": 1}
        assert health["fleet"]["shard_count"] == 2

    def test_unreachable_shard_degrades(self):
        health = aggregate_health({
            "s0": {"status": "ok", "queue_depth": 0, "running": 0},
            "s1": None,
        })
        assert health["status"] == "degraded"
        assert health["shards"]["s1"] == {"status": "unreachable"}
        assert health["fleet"]["shard_count"] == 2

    def test_shutting_down_shard_degrades(self):
        health = aggregate_health({
            "s0": {"status": "shutting-down", "queue_depth": 0,
                   "running": 0},
        })
        assert health["status"] == "degraded"

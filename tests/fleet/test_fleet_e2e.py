"""End-to-end: a live 2-shard fleet behind the stock client and CLI.

The acceptance bar: a fleet is a drop-in for a single-process service.
``repro submit`` against the router prints byte-identically to
``repro reproduce``, status/health/metrics aggregate across shards,
and a drain rotates a shard with zero dropped submissions.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.fleet import FleetInThread
from repro.service import ServiceClient, ServiceError, ServiceInThread


@pytest.fixture(scope="module")
def fleet():
    with FleetInThread(shards=2, workers=1, queue_depth=16) as handle:
        yield handle


@pytest.fixture()
def client(fleet):
    with ServiceClient(fleet.host, fleet.port, timeout=60) as c:
        yield c


def tiny_plan(seed: int, case: str = "e2e") -> dict:
    return {
        "jobs": [
            {
                "config": {"processor": "K8", "infra": "pm",
                           "pattern": "rr", "mode": "user", "seed": seed},
                "benchmark": {"kind": "loop", "args": [1000]},
                "tags": {"case": case},
            }
        ]
    }


class TestRouting:
    def test_submit_round_trip_with_shard_attribution(self, client):
        job = client.submit_plan(tiny_plan(11))
        assert job["id"].startswith("f-")
        assert job["shard"] in ("s0", "s1")
        result = client.wait(job["id"], timeout=120)
        [row] = result["rows"]
        assert row["case"] == "e2e"
        assert row["expected"] == 3001

    def test_identical_submissions_land_on_the_same_shard(self, client):
        # Content hashing, not round-robin: repeats of a key always hit
        # the shard whose caches already hold it.
        first = client.submit_plan(tiny_plan(12))
        second = client.submit_plan(tiny_plan(12))
        assert first["shard"] == second["shard"]

    def test_result_survives_repolling_after_done(self, client):
        job = client.submit_plan(tiny_plan(13))
        first = client.wait(job["id"], timeout=120)
        # The router pinned the result; a second fetch is served from
        # its cache and must be identical.
        assert client.result(job["id"]) == first

    def test_unknown_job_is_a_structured_error(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("f-999-deadbeef")
        assert err.value.code == "unknown-job"

    def test_unknown_artifact_rejected_at_the_router(self, client):
        # Admission validation runs router-side: no shard round-trip,
        # same structured code as a plain server.
        with pytest.raises(ServiceError) as err:
            client.submit_artifact("figure99")
        assert err.value.code == "unknown-artifact"

    def test_result_before_done_is_a_conflict(self, client):
        job = client.submit_plan(tiny_plan(14, case="conflict"))
        try:
            client.result(job["id"])
        except ServiceError as exc:
            assert exc.code == "conflict"
        # (If the tiny job already finished, result legitimately
        # succeeds — both outcomes are protocol-correct.)


class TestByteIdentity:
    def test_submit_cli_prints_identically_to_reproduce(
        self, fleet, capsys
    ):
        args = ["--host", fleet.host, "--port", str(fleet.port)]
        assert main(
            ["submit", "figure4", "--repeats", "1", "--wait", *args]
        ) == 0
        served = capsys.readouterr().out
        assert main(["reproduce", "figure4", "--repeats", "1"]) == 0
        local = capsys.readouterr().out
        assert served == local


class TestAggregation:
    def test_health_aggregates_all_shards(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["shards"]) == {"s0", "s1"}
        assert health["fleet"]["shard_count"] == 2
        for shard_health in health["shards"].values():
            assert shard_health["status"] == "ok"

    def test_metrics_carry_shard_labels_and_fleet_sums(self, client):
        client.submit_plan(tiny_plan(15))
        text = client.metrics()
        assert 'repro_requests_total{shard="fleet"}' in text
        assert 'repro_requests_total{shard="s0"}' in text
        assert 'repro_requests_total{shard="s1"}' in text
        assert 'repro_requests_total{shard="router"}' in text

    def test_fleet_status_reports_topology(self, client):
        status = client.fleet_status()
        assert sorted(status["ring_shards"]) == ["s0", "s1"]
        by_id = {s["id"]: s for s in status["shards"]}
        assert set(by_id) == {"s0", "s1"}
        for shard in by_id.values():
            assert shard["state"] == "up"
            assert shard["pid"] > 0
        assert status["jobs"]["routed"] >= 0

    def test_fleet_status_cli(self, fleet, capsys):
        assert main([
            "fleet", "status",
            "--host", fleet.host, "--port", str(fleet.port),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload["ring_shards"]) == ["s0", "s1"]

    def test_status_cli_health_works_against_a_router(self, fleet, capsys):
        assert main([
            "status", "--health",
            "--host", fleet.host, "--port", str(fleet.port),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"


class TestDrain:
    def test_drain_finishes_jobs_and_restarts_the_shard(self, client):
        # Queue work, then drain whichever shard owns it: nothing may
        # be dropped, and the shard must come back restarted.
        jobs = [client.submit_plan(tiny_plan(20 + i, "drain"))
                for i in range(4)]
        target = jobs[0]["shard"]
        before = {
            s["id"]: s["restarts"]
            for s in client.fleet_status()["shards"]
        }
        out = client.fleet_drain(target)
        assert out["shard"] == target
        assert out["restarted"] is True
        for job in jobs:
            result = client.wait(job["id"], timeout=120)
            assert result["rows"]
        after = {
            s["id"]: s["restarts"]
            for s in client.fleet_status()["shards"]
        }
        assert after[target] == before[target] + 1

    def test_drain_cli_unknown_shard_fails_cleanly(self, fleet, capsys):
        assert main([
            "fleet", "drain", "s9",
            "--host", fleet.host, "--port", str(fleet.port),
        ]) == 1
        assert "unknown shard" in capsys.readouterr().err


class TestPlainServerInterop:
    def test_fleet_status_against_a_plain_server_is_unknown_op(self):
        with ServiceInThread(workers=1, queue_depth=8) as service:
            with ServiceClient(service.host, service.port) as c:
                with pytest.raises(ServiceError) as err:
                    c.fleet_status()
            assert err.value.code == "unknown-op"

    def test_fleet_status_cli_explains_plain_servers(self, capsys):
        with ServiceInThread(workers=1, queue_depth=8) as service:
            assert main([
                "fleet", "status",
                "--host", service.host, "--port", str(service.port),
            ]) == 1
        assert "plain service" in capsys.readouterr().err

"""Crash recovery: SIGKILL a shard mid-sweep, converge byte-identically.

The acceptance scenario from the paper-repro service's availability
story: a client keeps polling through the stock retry path while the
router reroutes the dead shard's jobs and respawns the process — and
because the engine is deterministic and the fleet shares one disk
cache, the answer that finally comes back is byte-identical to an
undisturbed run.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.fleet import FleetInThread
from repro.service import ServiceClient


@pytest.fixture(scope="module")
def fleet():
    with FleetInThread(shards=2, workers=1, queue_depth=16) as handle:
        yield handle


def sweep_plan(tag: str) -> dict:
    # Heavy enough that a kill lands mid-run, cheap enough for CI.
    return {
        "jobs": [
            {
                "config": {"processor": "K8", "infra": "pm",
                           "pattern": "rr", "mode": "user", "seed": s},
                "benchmark": {"kind": "loop", "args": [200000]},
                "tags": {"case": f"{tag}-{s}"},
            }
            for s in range(6)
        ]
    }


def wait_for_fleet_ok(client: ServiceClient, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.health()["status"] == "ok":
            return
        time.sleep(0.25)
    raise AssertionError("fleet did not return to ok after the kill")


class TestShardKill:
    def test_sigkill_mid_sweep_converges_byte_identically(self, fleet):
        with ServiceClient(fleet.host, fleet.port, timeout=60) as client:
            job = client.submit_plan(sweep_plan("kill"))
            owner = job["shard"]
            pid = next(
                s["pid"] for s in client.fleet_status()["shards"]
                if s["id"] == owner
            )
            os.kill(pid, signal.SIGKILL)

            # The stock client rides the reroute: status keeps
            # answering (synthetic queued while homeless), then the
            # job completes on a surviving shard.
            survived = client.wait(job["id"], timeout=180)
            assert len(survived["rows"]) == 6

            # Byte-identical: a fresh submission of the same plan on
            # the recovered fleet returns exactly the same payload.
            wait_for_fleet_ok(client)
            fresh = client.submit_plan(sweep_plan("kill"))
            undisturbed = client.wait(fresh["id"], timeout=180)
            assert survived == undisturbed

    def test_killed_shard_respawns_and_rejoins_the_ring(self, fleet):
        with ServiceClient(fleet.host, fleet.port, timeout=60) as client:
            wait_for_fleet_ok(client)
            status = client.fleet_status()
            assert sorted(status["ring_shards"]) == ["s0", "s1"]
            by_id = {s["id"]: s for s in status["shards"]}
            assert by_id["s0"]["state"] == "up"
            assert by_id["s1"]["state"] == "up"
            # Exactly one shard was killed by the previous test.
            assert sum(s["restarts"] for s in by_id.values()) >= 1

    def test_reroute_is_counted_in_the_router_metrics(self, fleet):
        with ServiceClient(fleet.host, fleet.port, timeout=60) as client:
            text = client.metrics()
            reroutes = [
                line for line in text.splitlines()
                if line.startswith("repro_fleet_reroutes_total")
                and 'shard="router"' in line
            ]
            assert reroutes, text
            assert float(reroutes[0].rsplit(" ", 1)[1]) >= 1
            restarts = [
                line for line in text.splitlines()
                if line.startswith("repro_fleet_shard_restarts_total")
                and 'shard="router"' in line
            ]
            assert float(restarts[0].rsplit(" ", 1)[1]) >= 1

"""The fleet's chaos points: ``shard-kill`` and ``router-conn-drop``.

Both ride the PR 7 seeded-stream grammar — same spec syntax, same
per-point RNG streams, same audit counter — and both are evaluated in
the *router* process (the full spec is forwarded to shard children via
``REPRO_CHAOS`` only when ``fleet serve --chaos`` asks for it, which
these in-process tests do not).
"""

from __future__ import annotations

import time

import pytest

from repro.chaos import configure_chaos, parse_chaos_spec, reset_chaos
from repro.fleet import FleetInThread
from repro.service import ServiceClient


@pytest.fixture(autouse=True)
def clean_chaos():
    reset_chaos()
    yield
    reset_chaos()


class TestSpecGrammar:
    def test_shard_kill_parses(self):
        [spec] = parse_chaos_spec("shard-kill:p=0.5,seed=7,times=2")
        assert spec.point == "shard-kill"
        assert spec.probability == 0.5
        assert spec.times == 2

    def test_router_conn_drop_parses(self):
        [spec] = parse_chaos_spec("router-conn-drop:p=1,times=1")
        assert spec.point == "router-conn-drop"

    def test_round_trips_through_render(self):
        [spec] = parse_chaos_spec("shard-kill:p=0.25,seed=3")
        assert parse_chaos_spec(spec.render()) == (spec,)


class TestRouterConnDrop:
    def test_client_retry_rides_a_dropped_response(self):
        # One response is computed and then dropped on the floor; the
        # stock client's connection-lost retry makes the call succeed
        # anyway, and the injector's audit trail shows the fire.
        injector = configure_chaos("router-conn-drop:p=1,times=1")
        with FleetInThread(shards=1, workers=1, queue_depth=8) as fleet:
            with ServiceClient(fleet.host, fleet.port, timeout=60) as client:
                assert client.health()["status"] in ("ok", "degraded")
        evaluated, fired = injector.counts()["router-conn-drop"]
        assert fired == 1
        assert evaluated >= 1

    def test_no_retry_client_sees_the_drop(self):
        configure_chaos("router-conn-drop:p=1,times=1")
        with FleetInThread(shards=1, workers=1, queue_depth=8) as fleet:
            with ServiceClient(
                fleet.host, fleet.port, timeout=60, retry=False
            ) as client:
                with pytest.raises(Exception):
                    client.health()
                # The budget is spent; the next call goes through.
                assert client.health()["status"] in ("ok", "degraded")


class TestShardKillChaos:
    def test_probe_loop_kills_and_recovers_a_shard(self):
        injector = configure_chaos("shard-kill:p=1,times=1,seed=5")
        with FleetInThread(
            shards=2, workers=1, queue_depth=8, probe_interval=0.2
        ) as fleet:
            with ServiceClient(fleet.host, fleet.port, timeout=60) as client:
                deadline = time.monotonic() + 60
                restarted = False
                while time.monotonic() < deadline:
                    status = client.fleet_status()
                    restarts = sum(
                        s["restarts"] for s in status["shards"]
                    )
                    if restarts >= 1 and client.health()["status"] == "ok":
                        restarted = True
                        break
                    time.sleep(0.25)
                assert restarted, "chaos kill did not lead to a respawn"
                # The ring healed: both shards route again.
                assert sorted(
                    client.fleet_status()["ring_shards"]
                ) == ["s0", "s1"]
        evaluated, fired = injector.counts()["shard-kill"]
        assert fired == 1
        assert evaluated >= 1

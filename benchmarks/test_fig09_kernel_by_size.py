"""Bench: regenerate Figure 9 (kernel instructions by loop size)."""

from conftest import bench_repeats

from repro.experiments import fig09_kernel_by_size


def test_figure9(benchmark, report):
    result = benchmark.pedantic(
        fig09_kernel_by_size.run,
        kwargs={"repeats": bench_repeats(40)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    # Paper: ~1500 kernel instructions at 500k iterations, ~2500 at 1M,
    # slope 0.00204 kernel instructions/iteration.
    assert 0.0008 < result.summary["slope"] < 0.005
    assert 600 < result.summary["mean_at_500k"] < 3000
    assert result.summary["mean_at_1m"] > result.summary["mean_at_500k"]

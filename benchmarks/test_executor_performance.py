"""Benches of the execution engine (plan → executor → cache).

Timings of a mid-size factorial sweep under each execution strategy:
serial, process-pool parallel, and cache-warm replay.  They guard the
two claims the engine makes — parallelism helps on multi-core hosts
(``reproduce figure1 --jobs 4`` vs ``--jobs 1``), and a warm cache makes
re-runs nearly free — without ever changing results, which
``tests/exec/test_executor.py`` proves separately.
"""

import os
import time

import pytest

from repro.core.config import Mode
from repro.core.sweep import SweepSpec
from repro.exec import ParallelExecutor, ResultCache, SerialExecutor


def mid_size_plan(base_seed: int = 0):
    """~1400 null measurements — figure-1 scale."""
    return SweepSpec(
        processors=("PD", "CD", "K8"),
        modes=(Mode.USER, Mode.USER_KERNEL),
        repeats=3,
        base_seed=base_seed,
        io_interrupts=False,
    ).plan()


def test_serial_sweep(benchmark):
    plan = mid_size_plan()
    table = benchmark.pedantic(
        SerialExecutor(cache=None).run, args=(plan,), rounds=3, iterations=1
    )
    assert len(table) == len(plan)


def test_parallel_sweep(benchmark):
    plan = mid_size_plan()
    executor = ParallelExecutor(max_workers=4, cache=None)
    table = benchmark.pedantic(
        executor.run, args=(plan,), rounds=3, iterations=1
    )
    assert len(table) == len(plan)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="parallel speedup needs more than one core",
)
def test_parallel_is_measurably_faster_than_serial():
    """The --jobs 4 vs --jobs 1 contrast from the CLI, timed directly."""
    plan = mid_size_plan(base_seed=1)
    start = time.perf_counter()
    serial = SerialExecutor(cache=None).run(plan)
    serial_s = time.perf_counter() - start

    executor = ParallelExecutor(max_workers=4, cache=None)
    start = time.perf_counter()
    parallel = executor.run(plan)
    parallel_s = time.perf_counter() - start

    assert serial.to_csv() == parallel.to_csv()
    assert parallel_s < serial_s


def test_batched_parallel_sweep(benchmark):
    """Chunked dispatch: N jobs per pool task instead of one.

    The counter assertions prove the batching actually engaged —
    dispatch units shrink from one-per-job to one-per-batch, and the
    workers report the boots their snapshot stores absorbed.
    """
    plan = mid_size_plan(base_seed=3)
    executor = ParallelExecutor(max_workers=4, cache=None, batch_size=32)
    table = benchmark.pedantic(
        executor.run, args=(plan,), rounds=3, iterations=1
    )
    assert len(table) == len(plan)
    # Counter proofs, independent of how many rounds the runner timed
    # (--benchmark-disable runs once, a timed pass runs several).
    runs = executor.stats.executed // len(plan)
    assert runs >= 1
    assert executor.stats.batches == runs * -(-len(plan) // 32)
    # Nearly every boot inside the workers was a snapshot hit: each of
    # the 4 workers pays at most one capture per (processor, kernel)
    # template, and this sweep spans 6 of them.
    assert executor.stats.snapshot_hits >= runs * (len(plan) - 4 * 6)


def test_cold_cache_sweep(benchmark):
    """Cache enabled but empty every round: pure store overhead."""
    plan = mid_size_plan(base_seed=2)

    def run_cold():
        return SerialExecutor(cache=ResultCache()).run(plan)

    table = benchmark.pedantic(run_cold, rounds=3, iterations=1)
    assert len(table) == len(plan)


def test_warm_cache_sweep(benchmark):
    """Every result already cached: replay must be nearly free."""
    plan = mid_size_plan(base_seed=2)
    cache = ResultCache()
    SerialExecutor(cache=cache).run(plan)  # populate

    executor = SerialExecutor(cache=cache)
    table = benchmark.pedantic(
        executor.run, args=(plan,), rounds=3, iterations=1
    )
    assert len(table) == len(plan)
    assert cache.stats.hits >= len(plan)

"""Bench: regenerate Figure 5 (error vs number of registers, K8)."""

from conftest import bench_repeats

from repro.experiments import fig05_registers


def test_figure5(benchmark, report):
    result = benchmark.pedantic(
        fig05_registers.run,
        kwargs={"repeats": bench_repeats(4)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    s = result.summary
    # Paper: pm u+k read-read grows ~112 instructions per register
    # (573 -> 909); pc read-read grows ~13 (84 -> 125); user-mode pm flat.
    assert 80 <= s[("pm", "user+kernel", "rr")]["slope_per_register"] <= 130
    assert 8 <= s[("pc", "user+kernel", "rr")]["slope_per_register"] <= 20
    assert abs(s[("pm", "user", "rr")]["slope_per_register"]) < 5

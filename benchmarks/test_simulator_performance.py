"""Benches of the simulator itself.

These are conventional pytest-benchmark timings (many rounds) of the
hot paths a study run exercises: boot + fixed-cost measurement, the
closed-form loop engine, and a full-size loop measurement.  They guard
against performance regressions that would make paper-scale sweeps
impractical.
"""

from repro.core import (
    LoopBenchmark,
    MeasurementConfig,
    Mode,
    NullBenchmark,
    Pattern,
    run_measurement,
)
from repro.kernel.snapshot import configure_default_store


def test_null_measurement_throughput(benchmark):
    """Boot a machine and run one fixed-cost measurement."""
    config = MeasurementConfig(
        processor="CD", infra="pc", pattern=Pattern.START_READ,
        mode=Mode.USER_KERNEL, seed=1, io_interrupts=False,
    )
    result = benchmark(run_measurement, config, NullBenchmark())
    assert result.error > 0


def test_million_iteration_loop_measurement(benchmark):
    """A 1M-iteration loop must cost O(interrupts), not O(instructions)."""
    config = MeasurementConfig(
        processor="CD", infra="pc", pattern=Pattern.START_READ,
        mode=Mode.USER_KERNEL, seed=2,
    )
    loop = LoopBenchmark(1_000_000)
    result = benchmark(run_measurement, config, loop)
    assert result.expected == 3_000_001


def test_repeated_template_measurements(benchmark):
    """A sweep's inner loop: same template, varying seeds.

    This is the shape the boot-snapshot store accelerates — one image
    capture, then every boot is a snapshot hit.  The counter assertions
    run in any mode (CI times nothing); the timing guards the ≥2×
    fast-path claim locally.
    """
    def sweep_slice() -> int:
        store = configure_default_store(enabled=True)
        for seed in range(20):
            run_measurement(
                MeasurementConfig(
                    processor="CD", infra="pc", mode=Mode.USER_KERNEL,
                    seed=seed, io_interrupts=False,
                ),
                NullBenchmark(),
            )
        return store.stats.hits

    hits = benchmark(sweep_slice)
    # 20 boots of one template: 1 capture, 19 snapshot hits.
    assert hits == 19


def test_billion_iteration_loop_engine(benchmark):
    """The closed-form engine at paper cross-check scale (10^9 iters)."""
    import numpy as np

    from repro.cpu.core import Core
    from repro.cpu.models import microarch
    from repro.isa.assembler import assemble_loop

    loop = assemble_loop(max_iters=1_000_000_000).to_loop()

    def run() -> float:
        core = Core(microarch("K8"), np.random.default_rng(0))
        core.loop_warmup_cycles = 0.0
        core.execute_loop(loop, 0x8048000)
        return core.cycle

    cycles = benchmark(run)
    assert cycles >= 2_000_000_000

"""Bench: regenerate Figure 6 + Table 3 (error by infrastructure)."""

from conftest import bench_repeats

from repro.experiments import fig06_infrastructure


def test_figure6_table3(benchmark, report):
    result = benchmark.pedantic(
        fig06_infrastructure.run,
        kwargs={"repeats": bench_repeats(4)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    checks = result.summary["checks"]
    # Paper §4.2: lower layers are more accurate; perfmon wins user-mode
    # counting, perfctr wins user+kernel counting.
    assert checks["layering_monotone"]
    assert checks["pm_wins_user"]
    assert checks["pc_wins_user_kernel"]

"""Bench: regenerate Table 2 (access patterns and their support)."""

from repro.experiments import tab02_patterns


def test_table2(benchmark, report):
    result = benchmark(tab02_patterns.run)
    report.emit(result)
    assert result.summary["matches_paper"]

"""Benches for the extension experiments (beyond the paper's evaluation)."""

from conftest import bench_repeats

from repro.experiments import (
    ext_cache_accuracy,
    ext_compensation,
    ext_frequency,
    ext_multiplexing,
    ext_sampling,
    ext_standalone_tools,
)


def test_ext_standalone_tools(benchmark, report):
    result = benchmark(ext_standalone_tools.run)
    report.emit(result)
    assert result.summary["some_tool_exceeds_60000pct"]
    assert result.summary["harness_relative_error_pct"] < 100


def test_ext_compensation(benchmark, report):
    result = benchmark.pedantic(
        ext_compensation.run,
        kwargs={"repeats": bench_repeats(4)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    assert result.summary["user_fixed_removed"]
    assert result.summary["duration_error_survives"]


def test_ext_multiplexing(benchmark, report):
    result = benchmark(ext_multiplexing.run)
    report.emit(result)
    assert result.summary["uniform_accurate"]
    assert result.summary["fine_slicing_helps"]


def test_ext_sampling(benchmark, report):
    result = benchmark(ext_sampling.run)
    report.emit(result)
    errors = [
        result.summary[p]["error"] for p in (0, 1_000_000, 250_000, 50_000)
    ]
    assert errors == sorted(errors)


def test_ext_cache_accuracy(benchmark, report):
    result = benchmark.pedantic(
        ext_cache_accuracy.run,
        kwargs={"repeats": bench_repeats(3)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    assert result.summary["all_within_1pct"]
    assert result.summary["instr_more_contaminated_when_memory_bound"]


def test_ext_frequency_scaling(benchmark, report):
    result = benchmark.pedantic(
        ext_frequency.run,
        kwargs={"runs": bench_repeats(8)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    assert result.summary["guideline_confirmed"]


def test_ext_thread_isolation(benchmark, report):
    from repro.experiments import ext_thread_isolation

    result = benchmark(ext_thread_isolation.run)
    report.emit(result)
    assert result.summary["isolated"]


def test_ext_cross_platform(benchmark, report):
    from repro.experiments import ext_cross_platform

    result = benchmark(ext_cross_platform.run)
    report.emit(result)
    assert result.summary["pm_beats_pc_everywhere"]

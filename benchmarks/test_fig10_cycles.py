"""Bench: regenerate Figure 10 (cycles by loop size, 3 CPUs x pm/pc)."""

from conftest import bench_repeats

from repro.experiments import fig10_cycles


def test_figure10(benchmark, report):
    result = benchmark.pedantic(
        fig10_cycles.run,
        kwargs={"repeats": bench_repeats(2)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    # Paper: on PD, 1.5-4 million cycles for the 1M-iteration loop.
    assert result.summary["pd_spread"] > 1.8
    pd = result.summary[("PD", "pc")]
    assert pd["min_at_top"] > 1.2e6
    assert pd["max_at_top"] < 5.0e6

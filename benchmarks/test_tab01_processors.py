"""Bench: regenerate Table 1 (processors used in the study)."""

from repro.experiments import tab01_processors


def test_table1(benchmark, report):
    result = benchmark(tab01_processors.run)
    report.emit(result)
    assert result.summary["mismatches"] == []

"""Bench: regenerate Section 4.3 (n-way ANOVA of accuracy factors)."""

from conftest import bench_repeats

from repro.experiments import sec43_anova


def test_section43(benchmark, report):
    result = benchmark.pedantic(
        sec43_anova.run,
        kwargs={"repeats": bench_repeats(3)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    significant = set(result.summary["significant"])
    # Paper: everything but the optimization level is significant.
    assert {"processor", "infra", "pattern", "n_counters"} <= significant
    assert "opt" not in significant

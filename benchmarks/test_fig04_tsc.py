"""Bench: regenerate Figure 4 (TSC on/off, perfctr on CD)."""

from conftest import bench_repeats

from repro.experiments import fig04_tsc


def test_figure4(benchmark, report):
    result = benchmark.pedantic(
        fig04_tsc.run,
        kwargs={"repeats": bench_repeats(5)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    s = result.summary
    # Paper: read-read median drops from 1698 to 109.5 with the TSC on.
    assert s["rr_user_median_tsc_off"] > 1200
    assert s["rr_user_median_tsc_on"] < 200
    # start-stop unaffected; both read-initial patterns equally affected.
    assert abs(
        s[("user+kernel", "ao", False)] - s[("user+kernel", "ao", True)]
    ) < 30

"""Bench: regenerate Figure 7 (user+kernel duration-error slopes)."""

from conftest import bench_repeats

from repro.experiments import fig07_uk_slope


def test_figure7(benchmark, report):
    result = benchmark.pedantic(
        fig07_uk_slope.run,
        kwargs={"repeats": bench_repeats(8)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    slopes = {k: v for k, v in result.summary.items() if isinstance(k, tuple)}
    # Paper: all slopes positive, order 1e-3; pc on CD ~0.002.
    assert result.summary["all_positive"]
    assert all(slope < 0.02 for slope in slopes.values())
    assert 0.0005 < slopes[("pc", "CD")] < 0.006

"""Benches: regenerate the paper's structural figures (2 and 3)."""

from repro.experiments import fig02_stack, fig03_benchmark


def test_figure2(benchmark, report):
    result = benchmark(fig02_stack.run)
    report.emit(result)
    assert result.summary["paths"] == 6
    assert result.summary["layering_consistent"]


def test_figure3(benchmark, report):
    result = benchmark(fig03_benchmark.run)
    report.emit(result)
    assert result.summary["model_holds"]

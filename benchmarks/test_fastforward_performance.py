"""Benches of the symbolic fast-forward engine.

The engine's claim is blunt: a steady-state loop sweep must cost
O(interrupts) *Python statements*, not O(slices × PMU scans), and the
1M-iteration sweep must run at least 50× faster with ``--fast-forward
on`` than ``off`` — without changing a single output bit.  These
benches time both sides of that contrast on the paper's Core 2 Duo
configuration with a full counter complement (two programmable
counters plus the three fixed counters), and assert the ratio and the
byte-identity directly, so the engine can never buy speed with drift.
"""

import time

import pytest

from repro.core.benchmarks import LoopBenchmark
from repro.cpu import fastforward
from repro.cpu.events import Event, PrivFilter
from repro.cpu.pmu import CounterConfig
from repro.kernel.system import Machine

#: The headline scenario: one hundred back-to-back executions of the
#: paper's 1M-iteration loop — figure-7 scale for a single placement.
SWEEP_1M = (1_000_000, 100)
#: The long-haul scenario: three executions of a 100M-iteration loop.
SWEEP_100M = (100_000_000, 3)


def boot(mode: str, seed: int = 7) -> Machine:
    """A CD/perfctr machine with every counter slot live."""
    fastforward.reset_fastforward()
    fastforward.configure_fastforward(mode)
    machine = Machine(processor="CD", kernel="perfctr", seed=seed)
    pmu = machine.core.pmu
    pmu.program(0, CounterConfig(Event.INSTR_RETIRED, PrivFilter.USR,
                                 enabled=True))
    pmu.program(1, CounterConfig(Event.DCACHE_MISSES, PrivFilter.USR,
                                 enabled=True))
    for i in range(len(pmu.fixed)):
        pmu.configure_fixed(i, PrivFilter.ALL)
    return machine


def make_loop(trips: int):
    return LoopBenchmark(trips)._loop


def sweep(machine: Machine, loop, repeats: int) -> None:
    machine.core.execute_loop_sweep(loop, 4096, repeats)


def counter_state(machine: Machine) -> tuple:
    """Everything an engagement touches, hex-exact."""
    core = machine.core
    return (
        core.cycle.hex(),
        core.wall_s.hex(),
        core.pmu._tsc.hex(),
        tuple(c._value.hex() for c in core.pmu.counters),
        tuple(f._value.hex() for f in core.pmu.fixed),
        machine.controller.ticks_delivered,
        machine.controller.io_delivered,
        str(machine.rng.bit_generator.state),
    )


def best_of(runs: int, fn, inner: int = 1):
    """Best-of-N mean-of-``inner`` wall clock.

    Best-of keeps the scheduler's noise from deciding; the inner mean
    smooths per-call jitter on the microsecond-scale fast side.
    """
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def teardown_module(module) -> None:
    # Hand the process back with the env-configured engine.
    fastforward.reset_fastforward()


@pytest.mark.parametrize("mode", ["on", "off"])
def test_ff_sweep_1m(benchmark, mode):
    """The 1M-iteration loop sweep, both engine modes, for the record."""
    machine = boot(mode)
    trips, repeats = SWEEP_1M
    loop = make_loop(trips)
    sweep(machine, loop, 2)  # warm the model before the timed region
    benchmark.pedantic(sweep, args=(machine, loop, repeats),
                       rounds=3, iterations=1)


@pytest.mark.parametrize("mode", ["on", "off"])
def test_ff_sweep_100m(benchmark, mode):
    """Three 100M-iteration executions, both engine modes."""
    machine = boot(mode)
    trips, repeats = SWEEP_100M
    loop = make_loop(trips)
    sweep(machine, loop, 1)
    benchmark.pedantic(sweep, args=(machine, loop, repeats),
                       rounds=3, iterations=1)


def test_ff_sweep_1m_speedup_and_identity():
    """The tentpole claim, timed directly: ≥50× on the 1M sweep.

    Both sides run the identical sweep on identically seeded machines;
    the final machine state (counters, clocks, RNG position) must match
    bit for bit, and the fast side must win by at least 50×.  The warm
    sweep before timing mirrors real use: models persist process-wide,
    so a study pays the warm-up once.
    """
    trips, repeats = SWEEP_1M
    loop = make_loop(trips)

    slow_machine = boot("off")
    slow_s = best_of(3, lambda: sweep(slow_machine, loop, repeats))

    fast_machine = boot("on")
    sweep(fast_machine, loop, 2)
    fast_s = best_of(3, lambda: sweep(fast_machine, loop, repeats),
                     inner=10)

    # Identity: replay the whole thing once per mode on fresh machines
    # (timing above interleaved repeats, so those states diverge by
    # repeat count, not by engine).
    slow_ref = boot("off", seed=11)
    sweep(slow_ref, loop, 5)
    fast_ref = boot("on", seed=11)
    sweep(fast_ref, loop, 5)
    assert counter_state(slow_ref) == counter_state(fast_ref)

    ratio = slow_s / fast_s
    assert ratio >= 50.0, (
        f"fast-forward sweep speedup {ratio:.1f}x < 50x "
        f"(slow {slow_s * 1e3:.2f}ms, fast {fast_s * 1e3:.3f}ms)"
    )


def test_ff_sweep_100m_speedup():
    """Long loops amortize even better: ≥40× on the 100M sweep."""
    trips, repeats = SWEEP_100M
    loop = make_loop(trips)

    slow_machine = boot("off")
    slow_s = best_of(2, lambda: sweep(slow_machine, loop, repeats))

    fast_machine = boot("on")
    sweep(fast_machine, loop, 1)
    fast_s = best_of(3, lambda: sweep(fast_machine, loop, repeats),
                     inner=10)

    ratio = slow_s / fast_s
    assert ratio >= 40.0, (
        f"fast-forward 100M sweep speedup {ratio:.1f}x < 40x "
        f"(slow {slow_s * 1e3:.2f}ms, fast {fast_s * 1e3:.3f}ms)"
    )

"""Bench: regenerate Figure 11 (bimodal cycles, pm on K8)."""

from conftest import bench_repeats

from repro.experiments import fig11_bimodal


def test_figure11(benchmark, report):
    result = benchmark.pedantic(
        fig11_bimodal.run,
        kwargs={"repeats": bench_repeats(3)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    # Paper: two groups bounded below by c = 2i and c = 3i.
    assert result.summary["bimodal"]
    assert result.summary["below_two"] == 0
    assert result.summary["between"] == 0

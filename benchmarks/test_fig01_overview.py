"""Bench: regenerate Figure 1 (overall error distribution violins)."""

from conftest import bench_repeats

from repro.experiments import fig01_overview


def test_figure1(benchmark, report):
    result = benchmark.pedantic(
        fig01_overview.run,
        kwargs={"repeats": bench_repeats(2)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    user = result.summary["user"]
    uk = result.summary["user+kernel"]
    # Paper: minimum error near zero; user tail beyond 2500; user+kernel
    # configurations far beyond user-mode ones.
    assert user["min"] < 50
    assert user["max"] >= 1500
    assert uk["max"] > user["max"]
    assert uk["median"] > user["median"]

"""Benches of the execution backends: inline vs pool vs warm.

The warm backend exists to beat the per-run process pool — persistent
workers, template frames instead of pickled plans, pre-populated
snapshot stores.  These benches time the same mid-size sweep on every
backend and assert the contrast directly; byte-identity of the tables
is asserted alongside, so a backend can never buy speed with drift.
"""

import os
import time

import pytest

from repro.backend import make_backend, warm_available
from repro.core.config import Mode
from repro.core.sweep import SweepSpec
from repro.exec import BackendExecutor

needs_cores = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="backend contrast needs more than one core",
)
needs_fork = pytest.mark.skipif(
    not warm_available(), reason="warm backend needs the fork start method"
)


def mid_size_plan(base_seed: int = 0):
    """~1400 null measurements — figure-1 scale."""
    return SweepSpec(
        processors=("PD", "CD", "K8"),
        modes=(Mode.USER, Mode.USER_KERNEL),
        repeats=3,
        base_seed=base_seed,
        io_interrupts=False,
    ).plan()


def best_of(runs: int, fn):
    """Best-of-N wall clock: the scheduler's noise must not decide."""
    best = float("inf")
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_inline_backend_sweep(benchmark):
    plan = mid_size_plan()
    executor = BackendExecutor(make_backend("inline"), cache=None)
    table = benchmark.pedantic(
        executor.run, args=(plan,), rounds=3, iterations=1
    )
    assert len(table) == len(plan)


def test_pool_backend_sweep(benchmark):
    plan = mid_size_plan()
    executor = BackendExecutor(
        make_backend("pool", workers=4), cache=None
    )
    table = benchmark.pedantic(
        executor.run, args=(plan,), rounds=3, iterations=1
    )
    assert len(table) == len(plan)


@needs_fork
def test_warm_backend_sweep(benchmark):
    plan = mid_size_plan()
    backend = make_backend("warm", workers=4)
    executor = BackendExecutor(backend, cache=None)
    try:
        table = benchmark.pedantic(
            executor.run, args=(plan,), rounds=3, iterations=1
        )
    finally:
        backend.shutdown(grace=5.0)
    assert len(table) == len(plan)
    # The fleet persisted: rounds reused the same workers, and the
    # template preload absorbed (nearly) every worker-side boot.
    assert backend.stats.workers_spawned == 4
    assert backend.stats.worker_restarts == 0
    assert backend.stats.snapshot_hits >= backend.stats.jobs - 4 * 6


@needs_cores
@needs_fork
def test_warm_beats_pool():
    """The tentpole claim, timed directly: warm ≤ pool on the same plan.

    Both backends get 4 workers and best-of-3 timing; the warm fleet is
    spawned *inside* the timed region on its first round, so the win
    must come from persistence + frames + preloading, not from hiding
    startup cost.
    """
    plan = mid_size_plan(base_seed=1)

    pool_executor = BackendExecutor(
        make_backend("pool", workers=4), cache=None
    )
    pool_s, pool_table = best_of(3, lambda: pool_executor.run(plan))

    warm_backend = make_backend("warm", workers=4)
    warm_executor = BackendExecutor(warm_backend, cache=None)
    try:
        warm_s, warm_table = best_of(3, lambda: warm_executor.run(plan))
    finally:
        warm_backend.shutdown(grace=5.0)

    assert warm_table.to_csv() == pool_table.to_csv()
    assert warm_s <= pool_s, (
        f"warm backend ({warm_s:.3f}s) slower than pool ({pool_s:.3f}s)"
    )

"""Bench: regenerate Figure 12 (cycle slope by pattern x opt, K8/pm)."""

from conftest import bench_repeats

from repro.experiments import fig12_placement


def test_figure12(benchmark, report):
    result = benchmark.pedantic(
        fig12_placement.run,
        kwargs={"repeats": bench_repeats(2)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    # Paper: each cell is a clean line; neither factor alone fixes the
    # slope — only the (pattern, opt) combination does.
    assert result.summary["interaction_present"]
    assert result.summary["min_slope"] >= 1.9
    assert result.summary["max_slope"] <= 3.4

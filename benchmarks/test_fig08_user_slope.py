"""Bench: regenerate Figure 8 (user-mode duration-error slopes)."""

from conftest import bench_repeats

from repro.experiments import fig08_user_slope


def test_figure8(benchmark, report):
    result = benchmark.pedantic(
        fig08_user_slope.run,
        kwargs={"repeats": bench_repeats(20)},
        rounds=1,
        iterations=1,
    )
    report.emit(result)
    # Paper: |slope| a few 1e-6 or less, signs mixed.
    assert result.summary["max_abs_slope"] < 5e-5

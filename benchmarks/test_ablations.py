"""Ablation benches: switch one calibrated mechanism off and check the
corresponding paper result follows it (DESIGN.md's mechanism claims)."""

from conftest import bench_repeats

from repro.experiments.ablations import (
    duration_slope_vs_hz,
    placement_ablation,
    skid_ablation,
)


def test_ablation_hz_drives_duration_slope(benchmark):
    """Figure 7/9's slope must scale with the kernel's CONFIG_HZ."""
    slopes = benchmark.pedantic(
        duration_slope_vs_hz,
        kwargs={"repeats": bench_repeats(8)},
        rounds=1,
        iterations=1,
    )
    print(f"\nduration slope by HZ: {slopes}")
    assert slopes[100] < slopes[250] < slopes[1000]
    # linear-in-HZ within sampling noise
    assert slopes[1000] / max(slopes[100], 1e-9) > 4


def test_ablation_skid_is_sole_user_drift_source(benchmark):
    """Figure 8's user-mode drift must vanish with the skid disabled."""
    slopes = benchmark.pedantic(
        skid_ablation,
        kwargs={"repeats": bench_repeats(20)},
        rounds=1,
        iterations=1,
    )
    print(f"\nuser-mode slopes: {slopes}")
    assert abs(slopes["without_skid"]) < 1e-12  # exact zero, modulo lstsq
    assert abs(slopes["with_skid"]) > 1e-8


def test_ablation_placement_model_causes_bimodality(benchmark):
    """Figure 11's c=2i / c=3i split must vanish without BTB aliasing."""
    results = benchmark.pedantic(placement_ablation, rounds=1, iterations=1)
    print(f"\nK8 loop CPIs: {results}")
    assert results["aliasing"] == (2.0, 3.0)
    assert results["flat"] == (2.0,)

"""Shared infrastructure for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure of the paper and
prints/saves a paper-vs-measured report.  Scale is controlled by the
``REPRO_BENCH_REPEATS`` environment variable (default: a quick pass;
raise it to approach the paper's sample sizes).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.base import ExperimentResult

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def _meta_env_pairs() -> "dict[str, str]":
    """``REPRO_BENCH_META=key=value,key2=v2`` -> extra_info labels."""
    out: "dict[str, str]" = {}
    for pair in os.environ.get("REPRO_BENCH_META", "").split(","):
        key, sep, value = pair.partition("=")
        if sep and key.strip():
            out[key.strip()] = value.strip()
    return out


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Stamp run metadata into every benchmark's ``extra_info``.

    pytest-benchmark calls this right before writing
    ``--benchmark-json`` output, so BENCH_5/6 entries carry the git
    SHA, hostname and any ``REPRO_BENCH_META`` labels — the same shape
    ``repro loadtest`` writes — and ``repro bench record`` / ``repro
    report`` can label history records and report headers.  (The
    committed pre-stamping BENCH files stay readable: every consumer
    treats these keys as optional.)
    """
    from repro.fleet.loadtest import run_metadata

    metadata = run_metadata(_meta_env_pairs())
    for bench in output_json.get("benchmarks", []):
        extra = bench.setdefault("extra_info", {})
        for key, value in metadata.items():
            extra.setdefault(key, value)


def bench_repeats(default: int) -> int:
    """Per-configuration repetitions, scaled by REPRO_BENCH_REPEATS."""
    scale = int(os.environ.get("REPRO_BENCH_REPEATS", "1"))
    return max(1, default * scale)


@pytest.fixture
def report() -> "ReportSink":
    return ReportSink()


class ReportSink:
    """Prints an experiment's report and persists it next to the bench."""

    def emit(self, result: ExperimentResult) -> None:
        text = result.report()
        print()
        print(text)
        for note in result.notes:
            print(f"note: {note}")
        REPORT_DIR.mkdir(exist_ok=True)
        safe = (
            result.experiment_id.replace("+", "_")
            .replace(".", "_")
            .replace(":", "_")
        )
        (REPORT_DIR / f"{safe}.txt").write_text(text + "\n")

"""Shared infrastructure for the paper-artifact benchmarks.

Every benchmark regenerates one table or figure of the paper and
prints/saves a paper-vs-measured report.  Scale is controlled by the
``REPRO_BENCH_REPEATS`` environment variable (default: a quick pass;
raise it to approach the paper's sample sizes).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.base import ExperimentResult

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def bench_repeats(default: int) -> int:
    """Per-configuration repetitions, scaled by REPRO_BENCH_REPEATS."""
    scale = int(os.environ.get("REPRO_BENCH_REPEATS", "1"))
    return max(1, default * scale)


@pytest.fixture
def report() -> "ReportSink":
    return ReportSink()


class ReportSink:
    """Prints an experiment's report and persists it next to the bench."""

    def emit(self, result: ExperimentResult) -> None:
        text = result.report()
        print()
        print(text)
        for note in result.notes:
            print(f"note: {note}")
        REPORT_DIR.mkdir(exist_ok=True)
        safe = (
            result.experiment_id.replace("+", "_")
            .replace(".", "_")
            .replace(":", "_")
        )
        (REPORT_DIR / f"{safe}.txt").write_text(text + "\n")
